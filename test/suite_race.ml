(* Fixture-driven tests for the cmvrp_race domain-safety analyzer
   (tools/analysis).  Library-level tests call [Race_core.analyze] on
   the committed fixture corpus and assert the exact classification of
   every root; executable-level tests exercise exit codes, the JSON
   report, and the baseline flag.  The test cwd is
   [_build/default/test], so fixture .cmt artifacts live under
   [fixtures/race/.race_fixtures.objs/byte], the whole library tree
   under [../lib], and the executable at [../tools/analysis]. *)

let fixture_cmts = "fixtures/race/.race_fixtures.objs/byte"

let analyze_fixtures ?baseline () =
  Race_core.analyze ?baseline [ fixture_cmts ]

let finding_roots r =
  List.sort String.compare
    (List.map (fun f -> f.Race_core.f_root) r.Race_core.findings)

(* The corpus covers every classification the analyzer can emit. *)
let expected_finding_roots =
  [
    "Baseline_case.counter";
    "Buffer_spawn.log_buf";
    "Control_read_race.flag";
    "Leaked_ref.total";
    "Unguarded_table.cache";
    "t" (* Interproc_leak.build's local table *);
  ]

let test_fixture_findings () =
  let r = analyze_fixtures () in
  Alcotest.(check (list string))
    "shared-unguarded roots"
    (List.sort String.compare expected_finding_roots)
    (finding_roots r);
  Alcotest.(check int) "waived (waived_leak.ml)" 1 r.Race_core.waived;
  Alcotest.(check int) "baselined" 0 r.Race_core.baselined

let test_fixture_classification () =
  let r = analyze_fixtures () in
  let c = r.Race_core.classes in
  Alcotest.(check int) "atomic (atomic_counter)" 1 c.Race_core.n_atomic;
  Alcotest.(check int) "mutex-guarded (mutex_table)" 1 c.Race_core.n_guarded;
  Alcotest.(check int) "shared-read (shared_read)" 1 c.Race_core.n_shared_read;
  (* 6 findings + the waived leak *)
  Alcotest.(check int) "shared-unguarded" 7 c.Race_core.n_unguarded;
  Alcotest.(check bool)
    "confined roots exist (confined_ref, local_table, ...)" true
    (c.Race_core.n_confined > 0)

let find_root r name =
  match
    List.find_opt (fun f -> f.Race_core.f_root = name) r.Race_core.findings
  with
  | Some f -> f
  | None -> Alcotest.failf "no finding for root %s" name

let test_capture_paths () =
  let r = analyze_fixtures () in
  let leaked = find_root r "Leaked_ref.total" in
  Alcotest.(check string) "entry" "Pool.map" leaked.Race_core.f_entry;
  Alcotest.(check bool)
    "write kind" true
    (leaked.Race_core.f_kind = Race_core.Write);
  Alcotest.(check bool)
    "path names the spawning function" true
    (List.mem "Leaked_ref.sum" leaked.Race_core.f_path);
  Alcotest.(check bool)
    "path mentions the parallel entry" true
    (List.exists
       (fun s ->
         String.length s >= 8 && String.sub s 0 8 = "Pool.map")
       leaked.Race_core.f_path);
  let read_race = find_root r "Control_read_race.flag" in
  Alcotest.(check bool)
    "read-side race is kind read" true
    (read_race.Race_core.f_kind = Race_core.Read);
  let spawned = find_root r "Buffer_spawn.log_buf" in
  Alcotest.(check string)
    "Domain.spawn is an entry" "Domain.spawn" spawned.Race_core.f_entry;
  (* The interprocedural leak is caught even though the closure only
     passes the table to a helper. *)
  let interproc = find_root r "t" in
  Alcotest.(check string)
    "interproc leak detected via effect summary" "Pool.map"
    interproc.Race_core.f_entry

let test_baseline () =
  let live = "test/fixtures/race/baseline_case.ml:Baseline_case.counter" in
  let stale = "test/fixtures/race/gone.ml:Gone.root" in
  let r = analyze_fixtures ~baseline:[ live; stale ] () in
  Alcotest.(check int)
    "one fewer finding" 5
    (List.length r.Race_core.findings);
  Alcotest.(check int) "baselined" 1 r.Race_core.baselined;
  Alcotest.(check (list string))
    "stale entry reported" [ stale ] r.Race_core.unused_baseline;
  Alcotest.(check bool)
    "baselined root no longer reported" false
    (List.mem "Baseline_case.counter" (finding_roots r))

(* The core acceptance invariant: the real library tree analyzes clean.
   This is the machine-checked form of "Qcache stays on the control
   domain" (serve Engine) and "Metrics is atomics + a mutex-guarded
   registry". *)
let test_whole_tree_clean () =
  let r = Race_core.analyze [ "../lib" ] in
  Alcotest.(check int) "no unwaived findings" 0 (List.length r.Race_core.findings);
  (* Pool's result-slot array: disjoint per-index writes, waived in
     pool.ml.  It must remain the only shared-unguarded root. *)
  Alcotest.(check int) "exactly one waived root" 1 r.Race_core.waived;
  let c = r.Race_core.classes in
  Alcotest.(check int) "pool slots root" 1 c.Race_core.n_unguarded;
  Alcotest.(check bool)
    "metrics counters classify atomic" true
    (c.Race_core.n_atomic >= 30);
  Alcotest.(check bool)
    "mutex-guarded roots exist (metrics timers)" true
    (c.Race_core.n_guarded >= 1);
  Alcotest.(check bool)
    "the bulk of the tree is confined" true
    (c.Race_core.n_confined >= 100)

let test_missing_path () =
  match Race_core.analyze [ "no_such_dir" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on a missing path"

(* Executable-level tests. *)

let exe =
  Filename.concat ".." (Filename.concat "tools/analysis" "cmvrp_race.exe")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let remove_noerr path = try Sys.remove path with Sys_error _ -> ()

(* Capture files go through [Filename.temp_file] and are removed on every
   exit path — a failing assertion must not leak them into the cwd.
   Returns the exit code and the captured stdout. *)
let run_exe args =
  let out = Filename.temp_file "cmvrp_race_out" ".tmp" in
  let err = Filename.temp_file "cmvrp_race_err" ".tmp" in
  Fun.protect
    ~finally:(fun () ->
      remove_noerr out;
      remove_noerr err)
    (fun () ->
      let code =
        Sys.command (Filename.quote_command exe ~stdout:out ~stderr:err args)
      in
      (code, read_file out))

let run_exe_code args = fst (run_exe args)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
  in
  nn > 0 && go 0

let test_exe_exit_codes () =
  Alcotest.(check int) "library tree exits 0" 0 (run_exe_code [ "../lib" ]);
  Alcotest.(check int)
    "fixture corpus exits 1" 1
    (run_exe_code [ fixture_cmts ]);
  Alcotest.(check int) "missing path exits 2" 2 (run_exe_code [ "no_such_dir" ]);
  Alcotest.(check int) "unknown flag exits 2" 2 (run_exe_code [ "--bogus-flag" ])

let test_exe_human_output () =
  let code, out = run_exe [ fixture_cmts ] in
  Alcotest.(check int) "exit code" 1 code;
  Alcotest.(check bool)
    "human output names the leaked ref" true
    (contains out "Leaked_ref.total");
  Alcotest.(check bool)
    "human output shows the capture path" true
    (contains out "capture path:");
  Alcotest.(check bool)
    "human output names the entry point" true
    (contains out "Pool.map")

let test_exe_json_report () =
  let report = Filename.temp_file "cmvrp_race_report" ".json" in
  Fun.protect ~finally:(fun () -> remove_noerr report) @@ fun () ->
  let code, _ = run_exe [ "--out"; report; fixture_cmts ] in
  Alcotest.(check int) "exit code" 1 code;
  let doc =
    match Json.of_string (read_file report) with
    | Ok j -> j
    | Error e -> Alcotest.failf "unparseable JSON report: %s" e
  in
  let int_field name =
    match Option.bind (Json.member name doc) Json.to_int_opt with
    | Some n -> n
    | None -> Alcotest.failf "report lacks int field %S" name
  in
  Alcotest.(check int) "findings_count" 6 (int_field "findings_count");
  Alcotest.(check int) "waived" 1 (int_field "waived");
  let classif =
    match Json.member "classification" doc with
    | Some c -> c
    | None -> Alcotest.fail "report lacks a classification object"
  in
  (match
     Option.bind (Json.member "shared_unguarded" classif) Json.to_int_opt
   with
  | Some n -> Alcotest.(check int) "classification.shared_unguarded" 7 n
  | None -> Alcotest.fail "classification lacks shared_unguarded");
  let findings =
    match Option.bind (Json.member "findings" doc) Json.to_list_opt with
    | Some l -> l
    | None -> Alcotest.fail "report lacks a findings array"
  in
  Alcotest.(check int) "finding count" 6 (List.length findings);
  List.iter
    (fun f ->
      (match Option.bind (Json.member "root" f) Json.to_string_opt with
      | Some _ -> ()
      | None -> Alcotest.fail "finding without a root field");
      match Option.bind (Json.member "path" f) Json.to_list_opt with
      | Some (_ :: _) -> ()
      | _ -> Alcotest.fail "finding without a non-empty capture path")
    findings

let test_exe_baseline () =
  let bl = Filename.temp_file "cmvrp_race_baseline" ".tmp" in
  Fun.protect ~finally:(fun () -> remove_noerr bl) @@ fun () ->
  let oc = open_out bl in
  output_string oc
    "# temporary baseline for the exe test\n\
     test/fixtures/race/baseline_case.ml:Baseline_case.counter\n";
  close_out oc;
  let code, out = run_exe [ "--json"; "--baseline"; bl; fixture_cmts ] in
  Alcotest.(check int) "still findings left" 1 code;
  let doc =
    match Json.of_string out with
    | Ok j -> j
    | Error e -> Alcotest.failf "unparseable JSON on stdout: %s" e
  in
  (match Option.bind (Json.member "findings_count" doc) Json.to_int_opt with
  | Some n -> Alcotest.(check int) "baselined finding suppressed" 5 n
  | None -> Alcotest.fail "no findings_count");
  match Option.bind (Json.member "baselined" doc) Json.to_int_opt with
  | Some n -> Alcotest.(check int) "baselined count" 1 n
  | None -> Alcotest.fail "no baselined field"

let suite =
  [
    Alcotest.test_case "fixture findings" `Quick test_fixture_findings;
    Alcotest.test_case "fixture classification" `Quick
      test_fixture_classification;
    Alcotest.test_case "capture paths" `Quick test_capture_paths;
    Alcotest.test_case "suppression baseline" `Quick test_baseline;
    Alcotest.test_case "whole library tree analyzes clean" `Quick
      test_whole_tree_clean;
    Alcotest.test_case "missing path rejected" `Quick test_missing_path;
    Alcotest.test_case "exe exit codes" `Quick test_exe_exit_codes;
    Alcotest.test_case "exe human output" `Quick test_exe_human_output;
    Alcotest.test_case "exe --out JSON report" `Quick test_exe_json_report;
    Alcotest.test_case "exe --baseline" `Quick test_exe_baseline;
  ]
