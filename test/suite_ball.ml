(* Closed-form neighborhood sizes vs. BFS dilation — the identities behind
   every ω_T computation. *)

let point2 x y = [| x; y |]

let test_binomial () =
  Alcotest.(check int) "C(5,2)" 10 (Ball.binomial 5 2);
  Alcotest.(check int) "C(n,0)" 1 (Ball.binomial 9 0);
  Alcotest.(check int) "C(n,n)" 1 (Ball.binomial 9 9);
  Alcotest.(check int) "out of range" 0 (Ball.binomial 4 7);
  Alcotest.(check int) "negative k" 0 (Ball.binomial 4 (-1));
  Alcotest.(check int) "C(20,10)" 184756 (Ball.binomial 20 10)

let test_binomial_overflow_boundary () =
  (* C(34,17) is the largest central coefficient whose multiplicative
     recurrence stays within 63-bit ints on this path; it must come out
     exact, while a clearly out-of-range request must raise instead of
     silently wrapping. *)
  Alcotest.(check int) "C(34,17)" 2333606220 (Ball.binomial 34 17);
  (match Ball.binomial 100 50 with
  | exception Energy.Overflow _ -> ()
  | v -> Alcotest.failf "C(100,50) returned %d instead of raising" v)

let test_ball_volume_symmetry () =
  (* Σ_k 2^k C(d,k) C(r,k) is symmetric in (dim, radius). *)
  for a = 1 to 6 do
    for b = 0 to 6 do
      Alcotest.(check int)
        (Printf.sprintf "dim=%d r=%d" a b)
        (Ball.ball_volume ~dim:a ~radius:b)
        (Ball.ball_volume ~dim:b ~radius:a)
    done
  done

let test_ball_volume_known () =
  (* 1-D: 2r+1; 2-D diamond: 2r^2+2r+1. *)
  Alcotest.(check int) "1d r=3" 7 (Ball.ball_volume ~dim:1 ~radius:3);
  Alcotest.(check int) "2d r=1" 5 (Ball.ball_volume ~dim:2 ~radius:1);
  Alcotest.(check int) "2d r=2" 13 (Ball.ball_volume ~dim:2 ~radius:2);
  Alcotest.(check int) "3d r=1" 7 (Ball.ball_volume ~dim:3 ~radius:1);
  Alcotest.(check int) "r=0" 1 (Ball.ball_volume ~dim:5 ~radius:0);
  Alcotest.(check int) "negative radius" 0 (Ball.ball_volume ~dim:2 ~radius:(-1))

let test_ball_volume_vs_bfs () =
  for dim = 1 to 3 do
    for r = 0 to 4 do
      let bfs = Point.Set.cardinal (Ball.dilate_set [ Point.origin dim ] ~radius:r) in
      Alcotest.(check int)
        (Printf.sprintf "dim=%d r=%d" dim r)
        bfs
        (Ball.ball_volume ~dim ~radius:r)
    done
  done

let test_cube_ball_volume_vs_bfs () =
  for side = 1 to 3 do
    for r = 0 to 3 do
      let cube = Box.cube_at_origin ~dim:2 ~side in
      let bfs = Point.Set.cardinal (Ball.dilate_set (Box.points cube) ~radius:r) in
      Alcotest.(check int)
        (Printf.sprintf "side=%d r=%d" side r)
        bfs
        (Ball.cube_ball_volume ~dim:2 ~side ~radius:r)
    done
  done

let test_cube_ball_volume_3d_vs_bfs () =
  let cube = Box.cube_at_origin ~dim:3 ~side:2 in
  for r = 0 to 2 do
    let bfs = Point.Set.cardinal (Ball.dilate_set (Box.points cube) ~radius:r) in
    Alcotest.(check int)
      (Printf.sprintf "3d side=2 r=%d" r)
      bfs
      (Ball.cube_ball_volume ~dim:3 ~side:2 ~radius:r)
  done

let test_segment_formula_vs_bfs () =
  for len = 1 to 4 do
    for r = 0 to 3 do
      let seg = List.init len (fun i -> point2 i 0) in
      let bfs = Point.Set.cardinal (Ball.dilate_set seg ~radius:r) in
      Alcotest.(check int)
        (Printf.sprintf "len=%d r=%d" len r)
        bfs
        (Ball.segment_ball_volume_2d ~len ~radius:r)
    done
  done

let test_paper_shell_identity () =
  (* Theorem 5.1.1 uses |{i : D(i,T) = r}| = 4s + 4(r-1) for an s x s
     square in the plane. *)
  for s = 1 to 3 do
    let square = Box.points (Box.cube_at_origin ~dim:2 ~side:s) in
    let shells = Ball.shell_sizes square ~max_radius:4 in
    for r = 1 to 4 do
      Alcotest.(check int)
        (Printf.sprintf "s=%d r=%d" s r)
        ((4 * s) + (4 * (r - 1)))
        shells.(r)
    done
  done

let test_shell_sizes_sum_to_ball () =
  let pts = [ point2 0 0; point2 2 0 ] in
  let shells = Ball.shell_sizes pts ~max_radius:3 in
  let cumulative = Array.fold_left ( + ) 0 shells in
  Alcotest.(check int) "shells sum to dilation"
    (Point.Set.cardinal (Ball.dilate_set pts ~radius:3))
    cumulative

let test_box_ball_volume_rectangle () =
  let rect = Box.make ~lo:(point2 0 0) ~hi:(point2 3 1) in
  for r = 0 to 3 do
    let bfs = Point.Set.cardinal (Ball.dilate_set (Box.points rect) ~radius:r) in
    Alcotest.(check int) (Printf.sprintf "rect r=%d" r) bfs
      (Ball.box_ball_volume rect ~radius:r)
  done

let test_neighborhood_size_non_box () =
  (* An L-shaped set falls back to BFS; spot check against dilate_set. *)
  let l_shape = [ point2 0 0; point2 1 0; point2 0 1 ] in
  for r = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "L-shape r=%d" r)
      (Point.Set.cardinal (Ball.dilate_set l_shape ~radius:r))
      (Ball.neighborhood_size l_shape ~radius:r)
  done

let test_frontier_matches_shells () =
  let pts = [ point2 0 0; point2 2 1; point2 0 0 ] in
  let shells = Ball.dilate_shells pts ~max_radius:4 in
  let f = Ball.frontier pts in
  Alcotest.(check int) "starts at radius 0" 0 (Ball.frontier_radius f);
  Alcotest.(check (list (list int)))
    "shell 0 is the deduplicated seed"
    (List.map Array.to_list shells.(0))
    (List.map Array.to_list (Ball.frontier_shell f));
  for r = 1 to 4 do
    let shell = Ball.expand f in
    Alcotest.(check int) "radius advanced" r (Ball.frontier_radius f);
    Alcotest.(check (list (list int)))
      (Printf.sprintf "shell %d" r)
      (List.map Array.to_list shells.(r))
      (List.map Array.to_list shell);
    Alcotest.(check int)
      (Printf.sprintf "size %d" r)
      (Point.Set.cardinal (Ball.dilate_set pts ~radius:r))
      (Ball.frontier_size f)
  done

let test_iter_sphere_matches_shell () =
  let center = [| 1; -2 |] in
  for r = 0 to 4 do
    let collected = ref [] in
    Ball.iter_sphere ~center ~radius:r (fun p ->
        collected := Array.copy p :: !collected);
    let set = Point.Set.of_list !collected in
    Alcotest.(check int)
      (Printf.sprintf "no duplicates r=%d" r)
      (List.length !collected) (Point.Set.cardinal set);
    let expected =
      if r = 0 then Point.Set.singleton center
      else
        Point.Set.diff
          (Ball.dilate_set [ center ] ~radius:r)
          (Ball.dilate_set [ center ] ~radius:(r - 1))
    in
    Alcotest.(check bool)
      (Printf.sprintf "sphere = shell r=%d" r)
      true
      (Point.Set.equal set expected)
  done;
  let count = ref 0 in
  Ball.iter_sphere ~center:[| 0; 0; 0 |] ~radius:3 (fun _ -> incr count);
  Alcotest.(check int) "3d sphere cardinality"
    (Ball.ball_volume ~dim:3 ~radius:3 - Ball.ball_volume ~dim:3 ~radius:2)
    !count

let prop_dilate_shells_accumulate =
  QCheck.Test.make
    ~name:"dilate_shells accumulated to r = dilate_set at r" ~count:60
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 5)
           (pair (int_range (-3) 3) (int_range (-3) 3)))
        (int_range 0 4))
    (fun (coords, r) ->
      let pts = List.map (fun (x, y) -> point2 x y) coords in
      let shells = Ball.dilate_shells pts ~max_radius:r in
      let acc = List.concat (Array.to_list shells) in
      let acc_set = Point.Set.of_list acc in
      (* shells partition the ball: no duplicates across (or within) shells *)
      List.length acc = Point.Set.cardinal acc_set
      && Point.Set.equal acc_set (Ball.dilate_set pts ~radius:r))

let prop_closed_form_matches_bfs =
  QCheck.Test.make ~name:"box_ball_volume = BFS dilation (random 2d boxes)"
    ~count:60
    QCheck.(triple (int_range 1 4) (int_range 1 4) (int_range 0 4))
    (fun (w, h, r) ->
      let box = Box.make ~lo:(point2 0 0) ~hi:(point2 (w - 1) (h - 1)) in
      Ball.box_ball_volume box ~radius:r
      = Point.Set.cardinal (Ball.dilate_set (Box.points box) ~radius:r))

let prop_dilation_monotone =
  QCheck.Test.make ~name:"dilation is monotone in the radius" ~count:60
    QCheck.(pair (int_range 0 4) (int_range 0 4))
    (fun (r1, r2) ->
      let pts = [ point2 0 0; point2 3 2 ] in
      let lo = min r1 r2 and hi = max r1 r2 in
      Point.Set.subset (Ball.dilate_set pts ~radius:lo) (Ball.dilate_set pts ~radius:hi))

let suite =
  [
    Alcotest.test_case "binomial" `Quick test_binomial;
    Alcotest.test_case "binomial overflow boundary" `Quick
      test_binomial_overflow_boundary;
    Alcotest.test_case "ball volume (dim,radius) symmetry" `Quick
      test_ball_volume_symmetry;
    Alcotest.test_case "ball volume known values" `Quick test_ball_volume_known;
    Alcotest.test_case "ball volume vs BFS" `Quick test_ball_volume_vs_bfs;
    Alcotest.test_case "cube ball vs BFS (2d)" `Quick test_cube_ball_volume_vs_bfs;
    Alcotest.test_case "cube ball vs BFS (3d)" `Quick test_cube_ball_volume_3d_vs_bfs;
    Alcotest.test_case "segment formula vs BFS" `Quick test_segment_formula_vs_bfs;
    Alcotest.test_case "paper shell identity (Thm 5.1.1)" `Quick test_paper_shell_identity;
    Alcotest.test_case "shells sum to dilation" `Quick test_shell_sizes_sum_to_ball;
    Alcotest.test_case "rectangle closed form" `Quick test_box_ball_volume_rectangle;
    Alcotest.test_case "non-box falls back to BFS" `Quick test_neighborhood_size_non_box;
    Alcotest.test_case "frontier matches dilate_shells" `Quick
      test_frontier_matches_shells;
    Alcotest.test_case "iter_sphere matches shell" `Quick
      test_iter_sphere_matches_shell;
    QCheck_alcotest.to_alcotest prop_dilate_shells_accumulate;
    QCheck_alcotest.to_alcotest prop_closed_form_matches_bfs;
    QCheck_alcotest.to_alcotest prop_dilation_monotone;
  ]
