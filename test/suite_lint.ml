(* Fixture-driven tests for the cmvrp_lint static-analysis pass
   (tools/lint).  Library-level tests call [Lint_rules.run] directly and
   assert the exact rule ids each committed fixture produces;
   executable-level tests exercise exit codes and the [--out] JSON
   report.  The test cwd is [_build/default/test], so fixtures live at
   [fixtures/lint] and the executable at [../tools/lint]. *)

let fixture name = Filename.concat "fixtures/lint" name

let rules_of path =
  let _, diags = Lint_rules.run [ fixture path ] in
  List.sort String.compare (List.map (fun d -> d.Lint_rules.rule) diags)

let check_rules path expected =
  Alcotest.(check (list string))
    path
    (List.sort String.compare expected)
    (rules_of path)

let test_poly_compare () =
  check_rules "poly_compare_fail.ml"
    [ "poly-compare"; "poly-compare"; "poly-compare"; "poly-compare"; "poly-compare" ];
  check_rules "poly_compare_pass.ml" []

let test_handler_raise () =
  check_rules "handler_raise_fail.ml"
    [ "handler-raise"; "handler-raise"; "handler-raise" ];
  check_rules "handler_raise_pass.ml" []

let test_missing_mli () =
  check_rules "lib/missing_mli_fail.ml" [ "missing-mli" ];
  check_rules "lib/missing_mli_pass.ml" []

let test_print_in_lib () =
  check_rules "lib/print_fail.ml" [ "print-in-lib"; "print-in-lib" ];
  check_rules "lib/print_pass.ml" []

let test_metric_name () =
  check_rules "metric_name_fail.ml"
    [ "metric-name"; "metric-name"; "metric-name"; "metric-name" ];
  check_rules "metric_name_dup_fail.ml" [ "metric-name" ];
  check_rules "metric_name_pass.ml" []

let test_unsafe_array () =
  check_rules "unsafe_array_fail.ml" [ "unsafe-array"; "unsafe-array" ];
  check_rules "lib/flow/unsafe_array_pass.ml" []

let test_energy_arith () =
  check_rules "energy_arith_fail.ml"
    [ "energy-arith"; "energy-arith"; "energy-arith" ];
  check_rules "energy_arith_pass.ml" []

let test_catch_all () =
  check_rules "catch_all_fail.ml" [ "catch-all" ];
  check_rules "catch_all_pass.ml" []

let test_domain_confine () =
  check_rules "domain_confine_fail.ml"
    [ "domain-confine"; "domain-confine"; "domain-confine" ];
  check_rules "lib/prelude/pool.ml" [];
  check_rules "lib/metrics/locking_pass.ml" []

let test_waiver () = check_rules "waiver.ml" []
let test_clean () = check_rules "clean.ml" []

let test_unused_waiver () =
  (* A marker waiving a rule that never fires, and one with a
     misspelled id (so the real violation on its line survives). *)
  check_rules "unused_waiver_fail.ml"
    [ "poly-compare"; "unused-waiver"; "unused-waiver" ];
  check_rules "unused_waiver_only.ml" [ "unused-waiver" ];
  let _, diags = Lint_rules.run [ fixture "unused_waiver_only.ml" ] in
  Alcotest.(check bool)
    "unused-waiver is advisory" true
    (List.for_all (fun d -> d.Lint_rules.advisory) diags)

(* Linting the whole fixture tree exercises every rule exactly as the
   per-fixture counts above add up, and doubles as a parse check (a
   broken fixture would surface as a [parse-error] diagnostic). *)
let test_fixture_tree () =
  let _, diags = Lint_rules.run [ fixture "" ] in
  Alcotest.(check int) "total diagnostics" 29 (List.length diags);
  let seen =
    List.sort_uniq String.compare
      (List.map (fun d -> d.Lint_rules.rule) diags)
  in
  Alcotest.(check (list string))
    "every rule exercised"
    (List.sort String.compare Lint_rules.rule_ids)
    seen

let test_missing_path () =
  match Lint_rules.run [ fixture "no_such_dir" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on a missing path"

(* Executable-level tests. *)

let exe = Filename.concat ".." (Filename.concat "tools/lint" "cmvrp_lint.exe")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let remove_noerr path = try Sys.remove path with Sys_error _ -> ()

(* Capture files go through [Filename.temp_file] and are removed on every
   exit path — a failing assertion must not leak them into the cwd. *)
let run_exe args =
  let out = Filename.temp_file "cmvrp_lint_out" ".tmp" in
  let err = Filename.temp_file "cmvrp_lint_err" ".tmp" in
  Fun.protect
    ~finally:(fun () ->
      remove_noerr out;
      remove_noerr err)
    (fun () ->
      Sys.command (Filename.quote_command exe ~stdout:out ~stderr:err args))

let test_exe_exit_codes () =
  Alcotest.(check int) "clean fixture exits 0" 0 (run_exe [ fixture "clean.ml" ]);
  Alcotest.(check int)
    "advisory-only fixture exits 0" 0
    (run_exe [ fixture "unused_waiver_only.ml" ]);
  Alcotest.(check int)
    "failing fixture exits 1" 1
    (run_exe [ fixture "poly_compare_fail.ml" ]);
  Alcotest.(check int)
    "missing path exits 2" 2
    (run_exe [ fixture "no_such_dir" ]);
  Alcotest.(check int) "unknown flag exits 2" 2 (run_exe [ "--bogus-flag" ])

let test_exe_json_report () =
  let report = Filename.temp_file "cmvrp_lint_report" ".json" in
  Fun.protect ~finally:(fun () -> remove_noerr report) @@ fun () ->
  let code = run_exe [ "--out"; report; fixture "poly_compare_fail.ml" ] in
  Alcotest.(check int) "exit code" 1 code;
  let doc =
    match Json.of_string (read_file report) with
    | Ok j -> j
    | Error e -> Alcotest.failf "unparseable JSON report: %s" e
  in
  let int_field name =
    match Option.bind (Json.member name doc) Json.to_int_opt with
    | Some n -> n
    | None -> Alcotest.failf "report lacks int field %S" name
  in
  Alcotest.(check int) "checked_files" 1 (int_field "checked_files");
  Alcotest.(check int) "violations" 5 (int_field "violations");
  Alcotest.(check int) "advisories" 0 (int_field "advisories");
  let diags =
    match Option.bind (Json.member "diagnostics" doc) Json.to_list_opt with
    | Some l -> l
    | None -> Alcotest.fail "report lacks a diagnostics array"
  in
  Alcotest.(check int) "diagnostic count" 5 (List.length diags);
  List.iter
    (fun d ->
      (match Option.bind (Json.member "rule" d) Json.to_string_opt with
      | Some r -> Alcotest.(check string) "rule id" "poly-compare" r
      | None -> Alcotest.fail "diagnostic without a rule field");
      match Option.bind (Json.member "advisory" d) Json.to_bool_opt with
      | Some b -> Alcotest.(check bool) "blocking diagnostic" false b
      | None -> Alcotest.fail "diagnostic without an advisory field")
    diags

let suite =
  [
    Alcotest.test_case "poly-compare fixtures" `Quick test_poly_compare;
    Alcotest.test_case "handler-raise fixtures" `Quick test_handler_raise;
    Alcotest.test_case "missing-mli fixtures" `Quick test_missing_mli;
    Alcotest.test_case "print-in-lib fixtures" `Quick test_print_in_lib;
    Alcotest.test_case "metric-name fixtures" `Quick test_metric_name;
    Alcotest.test_case "unsafe-array fixtures" `Quick test_unsafe_array;
    Alcotest.test_case "energy-arith fixtures" `Quick test_energy_arith;
    Alcotest.test_case "catch-all fixtures" `Quick test_catch_all;
    Alcotest.test_case "domain-confine fixtures" `Quick test_domain_confine;
    Alcotest.test_case "waivers suppress diagnostics" `Quick test_waiver;
    Alcotest.test_case "unused waivers reported" `Quick test_unused_waiver;
    Alcotest.test_case "clean fixture" `Quick test_clean;
    Alcotest.test_case "whole fixture tree" `Quick test_fixture_tree;
    Alcotest.test_case "missing path rejected" `Quick test_missing_path;
    Alcotest.test_case "exe exit codes" `Quick test_exe_exit_codes;
    Alcotest.test_case "exe --out JSON report" `Quick test_exe_json_report;
  ]
