(* The serving stack: frame codec (blocking and incremental), protocol
   JSON roundtrips, the canonical demand digest (QCheck), the result
   cache's bit-identical answers, and the engine's dedup/metrics
   contract.  The daemon's socket loop is exercised end to end from
   suite_pool (concurrent clients need a second domain). *)

let digest_testable = Alcotest.int

let demand_equal a b =
  Demand_map.dim a = Demand_map.dim b
  && Demand_map.support_size a = Demand_map.support_size b
  && Demand_map.fold a ~init:true ~f:(fun acc p v ->
         acc && Demand_map.value b p = v)

let small_demand seed =
  let rng = Rng.create seed in
  Workload.demand
    (Workload.uniform ~rng
       ~box:(Box.cube_at_origin ~dim:2 ~side:5)
       ~jobs:(20 + Rng.int rng 30))

(* --- framing --- *)

let test_frame_chunked_roundtrip () =
  let payloads =
    [ ""; "x"; "{\"id\":1}"; "payload with\nnewlines\nand \xff bytes"; String.make 5000 'q' ]
  in
  let wire = String.concat "" (List.map Frame.encode payloads) in
  let dec = Frame.decoder () in
  let out = ref [] in
  String.iter
    (fun ch ->
      Frame.feed_string dec (String.make 1 ch);
      let rec drain () =
        match Frame.next dec with
        | Some p ->
            out := p :: !out;
            drain ()
        | None -> ()
      in
      drain ())
    wire;
  Alcotest.(check (list string)) "byte-at-a-time decode" payloads (List.rev !out);
  Alcotest.(check (option string)) "decoder drained" None (Frame.next dec)

let test_frame_bad_headers () =
  let rejects bytes =
    let dec = Frame.decoder () in
    Frame.feed_string dec bytes;
    match Frame.next dec with
    | exception Frame.Bad_frame _ -> ()
    | Some _ | None ->
        Alcotest.fail (Printf.sprintf "header %S must be rejected" bytes)
  in
  rejects "nope\n";
  rejects "12x34\n";
  rejects "\n";
  rejects (string_of_int (Frame.max_payload + 1) ^ "\n");
  (* Missing trailing newline after the payload. *)
  rejects "2\nabX"

let test_frame_channel_io () =
  let rd, wr = Unix.pipe () in
  let oc = Unix.out_channel_of_descr wr in
  let ic = Unix.in_channel_of_descr rd in
  Frame.write oc "first";
  Frame.write oc "second\nwith newline";
  close_out oc;
  Alcotest.(check (option string)) "first" (Some "first") (Frame.read ic);
  Alcotest.(check (option string))
    "second" (Some "second\nwith newline") (Frame.read ic);
  Alcotest.(check (option string)) "clean EOF" None (Frame.read ic);
  close_in ic

let test_frame_eof_mid_frame () =
  let rd, wr = Unix.pipe () in
  let oc = Unix.out_channel_of_descr wr in
  let ic = Unix.in_channel_of_descr rd in
  output_string oc "100\ntruncated";
  close_out oc;
  (match Frame.read ic with
  | exception Frame.Bad_frame _ -> ()
  | Some _ | None -> Alcotest.fail "EOF mid-frame must raise Bad_frame");
  close_in ic

(* --- protocol --- *)

let test_request_roundtrip () =
  let dm = small_demand 1 in
  List.iter
    (fun op ->
      let req = Protocol.request ~scale:360360 ~id:7 op dm in
      match Protocol.request_of_string (Protocol.request_to_string req) with
      | Error e -> Alcotest.fail e
      | Ok back ->
          Alcotest.(check int) "id" 7 back.Protocol.id;
          Alcotest.(check int) "scale" 360360 back.Protocol.scale;
          Alcotest.(check bool) "op" true (back.Protocol.op = op);
          Alcotest.(check bool) "demand survives" true
            (demand_equal dm back.Protocol.demand))
    [ Protocol.Omega_star; Protocol.Lp_value 3; Protocol.Witness ]

let test_request_validation () =
  let rejects text =
    match Protocol.request_of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "must reject %s" text)
  in
  rejects "not json";
  rejects "{\"id\":1,\"op\":\"sideways\"}";
  rejects "{\"id\":1,\"op\":\"lp_value\"}" (* radius required *);
  rejects "{\"id\":1,\"op\":\"omega_star\",\"scale\":0}";
  rejects "{\"id\":1,\"op\":\"omega_star\",\"demand\":[[0,0,-2]]}";
  rejects "{\"id\":1,\"op\":\"omega_star\",\"demand\":[[0,0]]}" (* row too short *);
  match
    Protocol.request_of_string "{\"id\":3,\"op\":\"ping\"}"
  with
  | Ok r ->
      Alcotest.(check bool) "ping defaults parse" true
        (r.Protocol.op = Protocol.Ping && r.Protocol.scale = Protocol.default_scale)
  | Error e -> Alcotest.fail e

let test_response_roundtrip () =
  let cases =
    [
      { Protocol.r_id = 1; r_cached = false; r_result = Ok (Protocol.Value (1.0 /. 3.0)) };
      { Protocol.r_id = 2; r_cached = true; r_result = Ok (Protocol.Value 0.1) };
      {
        Protocol.r_id = 3;
        r_cached = false;
        r_result = Ok (Protocol.Tight_set (Some ([ [| 0; 1 |]; [| 2; 2 |] ], 2.5)));
      };
      { Protocol.r_id = 4; r_cached = true; r_result = Ok (Protocol.Tight_set None) };
      { Protocol.r_id = 5; r_cached = false; r_result = Ok Protocol.Pong };
      { Protocol.r_id = 6; r_cached = false; r_result = Error "synthetic failure" };
    ]
  in
  List.iter
    (fun resp ->
      match Protocol.response_of_string (Protocol.response_to_string resp) with
      | Error e -> Alcotest.fail e
      | Ok back -> (
          Alcotest.(check int) "id" resp.Protocol.r_id back.Protocol.r_id;
          match (resp.Protocol.r_result, back.Protocol.r_result) with
          | Ok a, Ok b ->
              Alcotest.(check bool) "cached" resp.Protocol.r_cached
                back.Protocol.r_cached;
              (* Bit-identical across the wire: Float.equal, not approx. *)
              Alcotest.(check bool) "answer bit-identical" true
                (Protocol.answer_equal a b)
          | Error x, Error y -> Alcotest.(check string) "error text" x y
          | _ -> Alcotest.fail "Ok/Error mismatch after roundtrip"))
    cases

(* --- digest properties --- *)

let gen_rows =
  QCheck.Gen.(
    list_size (int_range 0 12)
      (map
         (fun ((x, y), d) -> ([| x; y |], d))
         (pair (pair (int_range 0 6) (int_range 0 6)) (int_range 1 9))))

let arb_rows =
  QCheck.make
    ~print:(fun rows ->
      String.concat ";"
        (List.map (fun (p, d) -> Printf.sprintf "(%d,%d)->%d" p.(0) p.(1) d) rows))
    gen_rows

let prop_digest_permutation_invariant =
  QCheck.Test.make ~name:"digest is canonical under row permutation" ~count:200
    (QCheck.pair arb_rows QCheck.int)
    (fun (rows, salt) ->
      let forward = Demand_map.of_alist 2 rows in
      let rng = Rng.create salt in
      let arr = Array.of_list rows in
      Rng.shuffle rng arr;
      let shuffled =
        Array.fold_left
          (fun dm (p, d) -> Demand_map.add dm p d)
          (Demand_map.empty 2) arr
      in
      (* Same multiset of rows: structurally equal, and equal digests. *)
      demand_equal forward shuffled
      && Protocol.demand_digest forward = Protocol.demand_digest shuffled)

let test_digest_collision_free_on_workloads () =
  (* Seeded workload sweep: structurally distinct demand sets must get
     distinct digests (63-bit FNV over ~300 sets; a collision here means
     the digest construction is broken, not bad luck). *)
  let dms = Array.init 300 (fun seed -> small_demand seed) in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i < j && not (demand_equal a b) then
            Alcotest.(check bool)
              (Printf.sprintf "seeds %d vs %d digests differ" i j)
              true
              (Protocol.demand_digest a <> Protocol.demand_digest b))
        dms)
    dms

let test_digest_sensitivity () =
  let dm = Demand_map.of_alist 2 [ ([| 1; 2 |], 3); ([| 4; 0 |], 5) ] in
  let bumped = Demand_map.add dm [| 1; 2 |] 1 in
  Alcotest.(check bool) "value change changes the digest" true
    (Protocol.demand_digest dm <> Protocol.demand_digest bumped);
  let moved = Demand_map.of_alist 2 [ ([| 2; 1 |], 3); ([| 4; 0 |], 5) ] in
  Alcotest.(check digest_testable) "digest is a pure function"
    (Protocol.demand_digest dm) (Protocol.demand_digest dm);
  Alcotest.(check bool) "coordinate swap changes the digest" true
    (Protocol.demand_digest dm <> Protocol.demand_digest moved)

(* --- engine + cache --- *)

let test_cached_answers_bit_identical () =
  let engine = Engine.create () in
  let dm = small_demand 17 in
  List.iter
    (fun op ->
      let req = Protocol.request ~id:0 op dm in
      let fresh = Engine.process engine req in
      let cached = Engine.process engine req in
      Alcotest.(check bool) "first call is a miss" false fresh.Protocol.r_cached;
      Alcotest.(check bool) "second call is a hit" true cached.Protocol.r_cached;
      match (fresh.Protocol.r_result, cached.Protocol.r_result, Engine.evaluate req) with
      | Ok a, Ok b, Ok reference ->
          Alcotest.(check bool) "hit equals miss" true (Protocol.answer_equal a b);
          Alcotest.(check bool) "both equal a fresh oracle call" true
            (Protocol.answer_equal a reference)
      | _ -> Alcotest.fail "expected Ok answers")
    [ Protocol.Omega_star; Protocol.Witness; Protocol.Lp_value 2 ]

let test_cache_key_discriminates () =
  let engine = Engine.create () in
  let dm = small_demand 23 in
  let r1 = Engine.process engine (Protocol.request ~id:0 Protocol.Omega_star dm) in
  let r2 = Engine.process engine (Protocol.request ~scale:360360 ~id:1 Protocol.Omega_star dm) in
  let r3 = Engine.process engine (Protocol.request ~id:2 Protocol.Witness dm) in
  Alcotest.(check bool) "different scale misses" false r2.Protocol.r_cached;
  Alcotest.(check bool) "different op misses" false r3.Protocol.r_cached;
  ignore r1

let test_batch_dedup_and_counters () =
  Metrics.reset ();
  let engine = Engine.create () in
  let a = small_demand 31 and b = small_demand 32 and c = small_demand 33 in
  let reqs =
    Array.mapi
      (fun id dm -> Protocol.request ~id Protocol.Omega_star dm)
      [| a; b; a; c; b; a; a; b; c; a |]
  in
  let responses = Engine.process_batch engine reqs in
  Alcotest.(check int) "all answered" 10 (Array.length responses);
  Array.iter
    (fun r ->
      match r.Protocol.r_result with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
    responses;
  let count name =
    match Metrics.sample name with
    | Some (Metrics.Count n) -> n
    | _ -> Alcotest.fail (name ^ " missing")
  in
  (* Three distinct demand sets: the oracle runs exactly three times and
     the seven coalesced duplicates count as hits. *)
  Alcotest.(check int) "oracle calls" 3 (count "serve.oracle_calls");
  Alcotest.(check int) "misses" 3 (count "serve.cache_misses");
  Alcotest.(check int) "hits" 7 (count "serve.cache_hits");
  Alcotest.(check int) "requests" 10 (count "serve.requests");
  Alcotest.(check int) "cache holds the distinct sets" 3 (Engine.cache_size engine);
  (match Metrics.sample "serve.request_latency_ns" with
  | Some (Metrics.Dist d) ->
      Alcotest.(check int) "one latency observation per request" 10 d.count
  | _ -> Alcotest.fail "serve.request_latency_ns missing");
  (* Coalesced duplicates return the same bits as the computed one. *)
  match (responses.(0).Protocol.r_result, responses.(2).Protocol.r_result) with
  | Ok x, Ok y ->
      Alcotest.(check bool) "duplicate equals original" true
        (Protocol.answer_equal x y)
  | _ -> Alcotest.fail "expected Ok answers"

let test_cache_capacity_fifo () =
  let engine = Engine.create ~cache_capacity:2 () in
  let ask id seed =
    ignore (Engine.process engine (Protocol.request ~id Protocol.Omega_star (small_demand seed)))
  in
  ask 0 41;
  ask 1 42;
  ask 2 43 (* evicts the entry for seed 41 *);
  Alcotest.(check int) "bounded" 2 (Engine.cache_size engine);
  let again =
    Engine.process engine (Protocol.request ~id:3 Protocol.Omega_star (small_demand 41))
  in
  Alcotest.(check bool) "oldest was evicted" false again.Protocol.r_cached

let test_engine_error_responses () =
  let engine = Engine.create () in
  let dm = small_demand 51 in
  (* A negative radius passes the constructor but fails inside the
     oracle; the engine must answer Error, not raise. *)
  let bad = Protocol.request ~id:9 (Protocol.Lp_value (-1)) dm in
  let ok = Protocol.request ~id:10 Protocol.Omega_star dm in
  let responses = Engine.process_batch engine [| bad; ok |] in
  (match responses.(0).Protocol.r_result with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative radius must fail");
  (match responses.(1).Protocol.r_result with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("sibling request must still succeed: " ^ e));
  Alcotest.(check bool) "failed answers are not cached" true
    (Engine.cache_size engine = 1)

(* --- loadgen --- *)

let test_loadgen_deterministic () =
  List.iter
    (fun mix ->
      let a = Loadgen.queries ~seed:5 ~mix ~n:40 in
      let b = Loadgen.queries ~seed:5 ~mix ~n:40 in
      Alcotest.(check int) "same length" (Array.length a) (Array.length b);
      Array.iteri
        (fun i req ->
          Alcotest.(check string)
            (Printf.sprintf "%s query %d" (Loadgen.mix_name mix) i)
            (Protocol.request_to_string req)
            (Protocol.request_to_string b.(i)))
        a)
    Loadgen.all_mixes

let test_loadgen_replay_stats () =
  let engine = Engine.create () in
  let reqs = Loadgen.queries ~seed:2 ~mix:Loadgen.Repeat_heavy ~n:60 in
  match Loadgen.replay_engine ~check:true engine reqs with
  | Error e -> Alcotest.fail e
  | Ok s ->
      Alcotest.(check int) "all completed" 60 s.Loadgen.completed;
      Alcotest.(check int) "no errors" 0 s.Loadgen.error_responses;
      Alcotest.(check bool) "repeat-heavy hits the cache" true
        (s.Loadgen.hit_rate > 0.0);
      Alcotest.(check bool) "quantiles are ordered" true
        (s.Loadgen.p50_ns <= s.Loadgen.p95_ns
        && s.Loadgen.p95_ns <= s.Loadgen.p99_ns)

let suite =
  [
    Alcotest.test_case "frame chunked roundtrip" `Quick test_frame_chunked_roundtrip;
    Alcotest.test_case "frame bad headers" `Quick test_frame_bad_headers;
    Alcotest.test_case "frame channel io" `Quick test_frame_channel_io;
    Alcotest.test_case "frame EOF mid-frame" `Quick test_frame_eof_mid_frame;
    Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
    Alcotest.test_case "request validation" `Quick test_request_validation;
    Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
    QCheck_alcotest.to_alcotest prop_digest_permutation_invariant;
    Alcotest.test_case "digest collision-free on workloads" `Quick
      test_digest_collision_free_on_workloads;
    Alcotest.test_case "digest sensitivity" `Quick test_digest_sensitivity;
    Alcotest.test_case "cached answers bit-identical" `Quick
      test_cached_answers_bit_identical;
    Alcotest.test_case "cache key discriminates" `Quick test_cache_key_discriminates;
    Alcotest.test_case "batch dedup and counters" `Quick
      test_batch_dedup_and_counters;
    Alcotest.test_case "cache capacity FIFO" `Quick test_cache_capacity_fifo;
    Alcotest.test_case "engine error responses" `Quick test_engine_error_responses;
    Alcotest.test_case "loadgen deterministic" `Quick test_loadgen_deterministic;
    Alcotest.test_case "loadgen replay stats" `Quick test_loadgen_replay_stats;
  ]
