(* The serving stack: frame codec (blocking and incremental), protocol
   JSON roundtrips, the canonical demand digest (QCheck), the result
   cache's bit-identical answers, and the engine's dedup/metrics
   contract.  The daemon's socket loop is exercised end to end from
   suite_pool (concurrent clients need a second domain). *)

let digest_testable = Alcotest.int

let demand_equal a b =
  Demand_map.dim a = Demand_map.dim b
  && Demand_map.support_size a = Demand_map.support_size b
  && Demand_map.fold a ~init:true ~f:(fun acc p v ->
         acc && Demand_map.value b p = v)

let small_demand seed =
  let rng = Rng.create seed in
  Workload.demand
    (Workload.uniform ~rng
       ~box:(Box.cube_at_origin ~dim:2 ~side:5)
       ~jobs:(20 + Rng.int rng 30))

(* --- framing --- *)

let test_frame_chunked_roundtrip () =
  let payloads =
    [ ""; "x"; "{\"id\":1}"; "payload with\nnewlines\nand \xff bytes"; String.make 5000 'q' ]
  in
  let wire = String.concat "" (List.map Frame.encode payloads) in
  let dec = Frame.decoder () in
  let out = ref [] in
  String.iter
    (fun ch ->
      Frame.feed_string dec (String.make 1 ch);
      let rec drain () =
        match Frame.next dec with
        | Some p ->
            out := p :: !out;
            drain ()
        | None -> ()
      in
      drain ())
    wire;
  Alcotest.(check (list string)) "byte-at-a-time decode" payloads (List.rev !out);
  Alcotest.(check (option string)) "decoder drained" None (Frame.next dec)

let test_frame_bad_headers () =
  let rejects bytes =
    let dec = Frame.decoder () in
    Frame.feed_string dec bytes;
    match Frame.next dec with
    | exception Frame.Bad_frame _ -> ()
    | Some _ | None ->
        Alcotest.fail (Printf.sprintf "header %S must be rejected" bytes)
  in
  rejects "nope\n";
  rejects "12x34\n";
  rejects "\n";
  rejects (string_of_int (Frame.max_payload + 1) ^ "\n");
  (* Missing trailing newline after the payload. *)
  rejects "2\nabX"

let test_frame_channel_io () =
  let rd, wr = Unix.pipe () in
  let oc = Unix.out_channel_of_descr wr in
  let ic = Unix.in_channel_of_descr rd in
  Frame.write oc "first";
  Frame.write oc "second\nwith newline";
  close_out oc;
  Alcotest.(check (option string)) "first" (Some "first") (Frame.read ic);
  Alcotest.(check (option string))
    "second" (Some "second\nwith newline") (Frame.read ic);
  Alcotest.(check (option string)) "clean EOF" None (Frame.read ic);
  close_in ic

let test_frame_eof_mid_frame () =
  let rd, wr = Unix.pipe () in
  let oc = Unix.out_channel_of_descr wr in
  let ic = Unix.in_channel_of_descr rd in
  output_string oc "100\ntruncated";
  close_out oc;
  (match Frame.read ic with
  | exception Frame.Bad_frame _ -> ()
  | Some _ | None -> Alcotest.fail "EOF mid-frame must raise Bad_frame");
  close_in ic

(* --- protocol --- *)

let test_request_roundtrip () =
  let dm = small_demand 1 in
  List.iter
    (fun op ->
      let req = Protocol.request ~scale:360360 ~id:7 op dm in
      match Protocol.request_of_string (Protocol.request_to_string req) with
      | Error e -> Alcotest.fail e
      | Ok back ->
          Alcotest.(check int) "id" 7 back.Protocol.id;
          Alcotest.(check int) "scale" 360360 back.Protocol.scale;
          Alcotest.(check bool) "op" true (back.Protocol.op = op);
          Alcotest.(check bool) "demand survives" true
            (demand_equal dm back.Protocol.demand))
    [ Protocol.Omega_star; Protocol.Lp_value 3; Protocol.Witness ]

let test_request_validation () =
  let rejects text =
    match Protocol.request_of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "must reject %s" text)
  in
  rejects "not json";
  rejects "{\"id\":1,\"op\":\"sideways\"}";
  rejects "{\"id\":1,\"op\":\"lp_value\"}" (* radius required *);
  rejects "{\"id\":1,\"op\":\"omega_star\",\"scale\":0}";
  rejects "{\"id\":1,\"op\":\"omega_star\",\"demand\":[[0,0,-2]]}";
  rejects "{\"id\":1,\"op\":\"omega_star\",\"demand\":[[0,0]]}" (* row too short *);
  match
    Protocol.request_of_string "{\"id\":3,\"op\":\"ping\"}"
  with
  | Ok r ->
      Alcotest.(check bool) "ping defaults parse" true
        (r.Protocol.op = Protocol.Ping && r.Protocol.scale = Protocol.default_scale)
  | Error e -> Alcotest.fail e

let test_response_roundtrip () =
  let cases =
    [
      { Protocol.r_id = 1; r_cached = false; r_result = Ok (Protocol.Value (1.0 /. 3.0)) };
      { Protocol.r_id = 2; r_cached = true; r_result = Ok (Protocol.Value 0.1) };
      {
        Protocol.r_id = 3;
        r_cached = false;
        r_result = Ok (Protocol.Tight_set (Some ([ [| 0; 1 |]; [| 2; 2 |] ], 2.5)));
      };
      { Protocol.r_id = 4; r_cached = true; r_result = Ok (Protocol.Tight_set None) };
      { Protocol.r_id = 5; r_cached = false; r_result = Ok Protocol.Pong };
      { Protocol.r_id = 6; r_cached = false; r_result = Error "synthetic failure" };
    ]
  in
  List.iter
    (fun resp ->
      match Protocol.response_of_string (Protocol.response_to_string resp) with
      | Error e -> Alcotest.fail e
      | Ok back -> (
          Alcotest.(check int) "id" resp.Protocol.r_id back.Protocol.r_id;
          match (resp.Protocol.r_result, back.Protocol.r_result) with
          | Ok a, Ok b ->
              Alcotest.(check bool) "cached" resp.Protocol.r_cached
                back.Protocol.r_cached;
              (* Bit-identical across the wire: Float.equal, not approx. *)
              Alcotest.(check bool) "answer bit-identical" true
                (Protocol.answer_equal a b)
          | Error x, Error y -> Alcotest.(check string) "error text" x y
          | _ -> Alcotest.fail "Ok/Error mismatch after roundtrip"))
    cases

(* --- digest properties --- *)

let gen_rows =
  QCheck.Gen.(
    list_size (int_range 0 12)
      (map
         (fun ((x, y), d) -> ([| x; y |], d))
         (pair (pair (int_range 0 6) (int_range 0 6)) (int_range 1 9))))

let arb_rows =
  QCheck.make
    ~print:(fun rows ->
      String.concat ";"
        (List.map (fun (p, d) -> Printf.sprintf "(%d,%d)->%d" p.(0) p.(1) d) rows))
    gen_rows

let prop_digest_permutation_invariant =
  QCheck.Test.make ~name:"digest is canonical under row permutation" ~count:200
    (QCheck.pair arb_rows QCheck.int)
    (fun (rows, salt) ->
      let forward = Demand_map.of_alist 2 rows in
      let rng = Rng.create salt in
      let arr = Array.of_list rows in
      Rng.shuffle rng arr;
      let shuffled =
        Array.fold_left
          (fun dm (p, d) -> Demand_map.add dm p d)
          (Demand_map.empty 2) arr
      in
      (* Same multiset of rows: structurally equal, and equal digests. *)
      demand_equal forward shuffled
      && Protocol.demand_digest forward = Protocol.demand_digest shuffled)

let test_digest_collision_free_on_workloads () =
  (* Seeded workload sweep: structurally distinct demand sets must get
     distinct digests (63-bit FNV over ~300 sets; a collision here means
     the digest construction is broken, not bad luck). *)
  let dms = Array.init 300 (fun seed -> small_demand seed) in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i < j && not (demand_equal a b) then
            Alcotest.(check bool)
              (Printf.sprintf "seeds %d vs %d digests differ" i j)
              true
              (Protocol.demand_digest a <> Protocol.demand_digest b))
        dms)
    dms

let test_digest_sensitivity () =
  let dm = Demand_map.of_alist 2 [ ([| 1; 2 |], 3); ([| 4; 0 |], 5) ] in
  let bumped = Demand_map.add dm [| 1; 2 |] 1 in
  Alcotest.(check bool) "value change changes the digest" true
    (Protocol.demand_digest dm <> Protocol.demand_digest bumped);
  let moved = Demand_map.of_alist 2 [ ([| 2; 1 |], 3); ([| 4; 0 |], 5) ] in
  Alcotest.(check digest_testable) "digest is a pure function"
    (Protocol.demand_digest dm) (Protocol.demand_digest dm);
  Alcotest.(check bool) "coordinate swap changes the digest" true
    (Protocol.demand_digest dm <> Protocol.demand_digest moved)

(* --- engine + cache --- *)

let test_cached_answers_bit_identical () =
  let engine = Engine.create () in
  let dm = small_demand 17 in
  List.iter
    (fun op ->
      let req = Protocol.request ~id:0 op dm in
      let fresh = Engine.process engine req in
      let cached = Engine.process engine req in
      Alcotest.(check bool) "first call is a miss" false fresh.Protocol.r_cached;
      Alcotest.(check bool) "second call is a hit" true cached.Protocol.r_cached;
      match (fresh.Protocol.r_result, cached.Protocol.r_result, Engine.evaluate req) with
      | Ok a, Ok b, Ok reference ->
          Alcotest.(check bool) "hit equals miss" true (Protocol.answer_equal a b);
          Alcotest.(check bool) "both equal a fresh oracle call" true
            (Protocol.answer_equal a reference)
      | _ -> Alcotest.fail "expected Ok answers")
    [ Protocol.Omega_star; Protocol.Witness; Protocol.Lp_value 2 ]

let test_cache_key_discriminates () =
  let engine = Engine.create () in
  let dm = small_demand 23 in
  let r1 = Engine.process engine (Protocol.request ~id:0 Protocol.Omega_star dm) in
  let r2 = Engine.process engine (Protocol.request ~scale:360360 ~id:1 Protocol.Omega_star dm) in
  let r3 = Engine.process engine (Protocol.request ~id:2 Protocol.Witness dm) in
  Alcotest.(check bool) "different scale misses" false r2.Protocol.r_cached;
  Alcotest.(check bool) "different op misses" false r3.Protocol.r_cached;
  ignore r1

let test_batch_dedup_and_counters () =
  Metrics.reset ();
  let engine = Engine.create () in
  let a = small_demand 31 and b = small_demand 32 and c = small_demand 33 in
  let reqs =
    Array.mapi
      (fun id dm -> Protocol.request ~id Protocol.Omega_star dm)
      [| a; b; a; c; b; a; a; b; c; a |]
  in
  let responses = Engine.process_batch engine reqs in
  Alcotest.(check int) "all answered" 10 (Array.length responses);
  Array.iter
    (fun r ->
      match r.Protocol.r_result with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
    responses;
  let count name =
    match Metrics.sample name with
    | Some (Metrics.Count n) -> n
    | _ -> Alcotest.fail (name ^ " missing")
  in
  (* Three distinct demand sets: the oracle runs exactly three times and
     the seven coalesced duplicates count as hits. *)
  Alcotest.(check int) "oracle calls" 3 (count "serve.oracle_calls");
  Alcotest.(check int) "misses" 3 (count "serve.cache_misses");
  Alcotest.(check int) "hits" 7 (count "serve.cache_hits");
  Alcotest.(check int) "requests" 10 (count "serve.requests");
  Alcotest.(check int) "cache holds the distinct sets" 3 (Engine.cache_size engine);
  (match Metrics.sample "serve.request_latency_ns" with
  | Some (Metrics.Dist d) ->
      Alcotest.(check int) "one latency observation per request" 10 d.count
  | _ -> Alcotest.fail "serve.request_latency_ns missing");
  (* Coalesced duplicates return the same bits as the computed one. *)
  match (responses.(0).Protocol.r_result, responses.(2).Protocol.r_result) with
  | Ok x, Ok y ->
      Alcotest.(check bool) "duplicate equals original" true
        (Protocol.answer_equal x y)
  | _ -> Alcotest.fail "expected Ok answers"

let test_cache_capacity_fifo () =
  let engine = Engine.create ~cache_capacity:2 () in
  let ask id seed =
    ignore (Engine.process engine (Protocol.request ~id Protocol.Omega_star (small_demand seed)))
  in
  ask 0 41;
  ask 1 42;
  ask 2 43 (* evicts the entry for seed 41 *);
  Alcotest.(check int) "bounded" 2 (Engine.cache_size engine);
  let again =
    Engine.process engine (Protocol.request ~id:3 Protocol.Omega_star (small_demand 41))
  in
  Alcotest.(check bool) "oldest was evicted" false again.Protocol.r_cached

let test_engine_error_responses () =
  let engine = Engine.create () in
  let dm = small_demand 51 in
  (* A negative radius passes the constructor but fails inside the
     oracle; the engine must answer Error, not raise. *)
  let bad = Protocol.request ~id:9 (Protocol.Lp_value (-1)) dm in
  let ok = Protocol.request ~id:10 Protocol.Omega_star dm in
  let responses = Engine.process_batch engine [| bad; ok |] in
  (match responses.(0).Protocol.r_result with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative radius must fail");
  (match responses.(1).Protocol.r_result with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("sibling request must still succeed: " ^ e));
  Alcotest.(check bool) "failed answers are not cached" true
    (Engine.cache_size engine = 1)

(* --- loadgen --- *)

let test_loadgen_deterministic () =
  List.iter
    (fun mix ->
      let a = Loadgen.queries ~seed:5 ~mix ~n:40 in
      let b = Loadgen.queries ~seed:5 ~mix ~n:40 in
      Alcotest.(check int) "same length" (Array.length a) (Array.length b);
      Array.iteri
        (fun i req ->
          Alcotest.(check string)
            (Printf.sprintf "%s query %d" (Loadgen.mix_name mix) i)
            (Protocol.request_to_string req)
            (Protocol.request_to_string b.(i)))
        a)
    Loadgen.all_mixes

let test_loadgen_replay_stats () =
  let engine = Engine.create () in
  let reqs = Loadgen.queries ~seed:2 ~mix:Loadgen.Repeat_heavy ~n:60 in
  match Loadgen.replay_engine ~check:true engine reqs with
  | Error e -> Alcotest.fail e
  | Ok s ->
      Alcotest.(check int) "all completed" 60 s.Loadgen.completed;
      Alcotest.(check int) "no errors" 0 s.Loadgen.error_responses;
      Alcotest.(check bool) "repeat-heavy hits the cache" true
        (s.Loadgen.hit_rate > 0.0);
      Alcotest.(check bool) "quantiles are ordered" true
        (s.Loadgen.p50_ns <= s.Loadgen.p95_ns
        && s.Loadgen.p95_ns <= s.Loadgen.p99_ns)

(* --- streaming sessions over the wire --- *)

let test_session_request_roundtrip () =
  let dm = Demand_map.empty 2 in
  List.iter
    (fun op ->
      let req = Protocol.request ~session:"s-1" ~id:11 op dm in
      match Protocol.request_of_string (Protocol.request_to_string req) with
      | Error e -> Alcotest.fail e
      | Ok back ->
          Alcotest.(check bool) "op survives" true (back.Protocol.op = op);
          Alcotest.(check (option string))
            "session name survives" (Some "s-1") back.Protocol.session)
    [
      Protocol.Session_add [| 3; -2 |];
      Protocol.Session_remove [| 0; 0 |];
      Protocol.Session_query;
    ]

let test_session_request_validation () =
  let rejects text =
    match Protocol.request_of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "must reject %s" text)
  in
  rejects "{\"id\":1,\"op\":\"session_add\",\"session\":\"s\"}" (* point required *);
  rejects "{\"id\":1,\"op\":\"session_add\",\"session\":\"s\",\"point\":[1]}"
    (* wrong arity for dim 2 *);
  rejects "{\"id\":1,\"op\":\"session_remove\",\"session\":\"s\",\"point\":[1,\"x\"]}";
  match
    Protocol.request_of_string
      "{\"id\":1,\"op\":\"session_add\",\"session\":\"s\",\"dim\":3,\"point\":[1,2,3]}"
  with
  | Ok r ->
      Alcotest.(check bool) "dim-3 point parses" true
        (r.Protocol.op = Protocol.Session_add [| 1; 2; 3 |])
  | Error e -> Alcotest.fail e

(* The maintained row sum must close into the exact digest a from-scratch
   demand_digest computes, through adds, partial removals and binding
   drops — this is what keeps session cache keys fresh. *)
let test_rowsum_tracks_digest () =
  let dim = 2 in
  let steps =
    [ ([| 0; 0 |], 2); ([| 1; 4 |], 3); ([| 0; 0 |], -1); ([| 1; 4 |], -3);
      ([| 0; 0 |], -1); ([| 5; 5 |], 1) ]
  in
  let dm = ref (Demand_map.empty dim) and rowsum = ref 0 in
  List.iteri
    (fun i (p, delta) ->
      let before = Demand_map.value !dm p in
      dm :=
        (if delta >= 0 then Demand_map.add !dm p delta
         else Demand_map.remove !dm p (-delta));
      rowsum :=
        Protocol.rowsum_update ~dim ~rowsum:!rowsum p ~before
          ~after:(before + delta);
      Alcotest.(check digest_testable)
        (Printf.sprintf "step %d: incremental digest = from-scratch" i)
        (Protocol.demand_digest !dm)
        (Protocol.digest_of_rowsum ~dim ~rowsum:!rowsum
           ~support:(Demand_map.support_size !dm)))
    steps

(* Stale-digest regression: mutating a session between two identical
   queries must invalidate the cache key — the second query after a
   mutation may never replay the pre-mutation answer. *)
let test_session_digest_never_stale () =
  let engine = Engine.create () in
  let dm0 = Demand_map.empty 2 in
  let run op = Engine.process engine (Protocol.request ~session:"s" ~id:0 op dm0) in
  let value r =
    match r.Protocol.r_result with
    | Ok (Protocol.Value v) -> v
    | Ok _ -> Alcotest.fail "expected a value"
    | Error e -> Alcotest.fail e
  in
  ignore (run (Protocol.Session_add [| 0; 0 |]));
  let q1 = run Protocol.Session_query in
  Alcotest.(check bool) "first query misses" false q1.Protocol.r_cached;
  let q2 = run Protocol.Session_query in
  Alcotest.(check bool) "repeat query hits" true q2.Protocol.r_cached;
  Alcotest.(check bool) "hit is bit-identical" true
    (Float.equal (value q1) (value q2));
  for _ = 1 to 5 do
    ignore (run (Protocol.Session_add [| 0; 0 |]))
  done;
  let q3 = run Protocol.Session_query in
  Alcotest.(check bool) "query after mutation recomputes" false
    q3.Protocol.r_cached;
  Alcotest.(check (float 1e-9)) "6 origin jobs" 1.2 (value q3);
  ignore (run (Protocol.Session_remove [| 0; 0 |]));
  let q4 = run Protocol.Session_query in
  Alcotest.(check bool) "removal also invalidates" false q4.Protocol.r_cached;
  Alcotest.(check bool) "removal answer is fresh" true
    (Float.equal 1.0 (value q4));
  (* back to the 1-job demand? no — 5 jobs; but the 6-job key must still
     hit if we return to that exact demand *)
  ignore (run (Protocol.Session_add [| 0; 0 |]));
  let q5 = run Protocol.Session_query in
  Alcotest.(check bool) "returning to a seen demand hits" true
    q5.Protocol.r_cached;
  Alcotest.(check bool) "and replays the exact bits" true
    (Float.equal (value q3) (value q5))

(* A session query and a stateless Omega_star on the same demand share
   one cache entry in both directions. *)
let test_session_shares_cache_with_stateless () =
  let engine = Engine.create () in
  let dm0 = Demand_map.empty 2 in
  let run ?session op dm =
    Engine.process engine (Protocol.request ?session ~id:0 op dm)
  in
  ignore (run ~session:"s" (Protocol.Session_add [| 0; 0 |]) dm0);
  ignore (run ~session:"s" (Protocol.Session_add [| 1; 0 |]) dm0);
  let q = run ~session:"s" Protocol.Session_query dm0 in
  Alcotest.(check bool) "session query misses first" false q.Protocol.r_cached;
  let dm = Demand_map.of_alist 2 [ ([| 0; 0 |], 1); ([| 1; 0 |], 1) ] in
  let stateless = run Protocol.Omega_star dm in
  Alcotest.(check bool) "stateless query on the same demand hits" true
    stateless.Protocol.r_cached;
  (match (q.Protocol.r_result, stateless.Protocol.r_result) with
  | Ok a, Ok b ->
      Alcotest.(check bool) "shared entry, same bits" true
        (Protocol.answer_equal a b)
  | _ -> Alcotest.fail "expected Ok answers");
  (* and the reverse direction: stateless first, session hits *)
  let dm2 = Demand_map.of_alist 2 [ ([| 0; 0 |], 1); ([| 1; 0 |], 1); ([| 2; 0 |], 1) ] in
  ignore (run Protocol.Omega_star dm2);
  ignore (run ~session:"s" (Protocol.Session_add [| 2; 0 |]) dm0);
  let q2 = run ~session:"s" Protocol.Session_query dm0 in
  Alcotest.(check bool) "session query hits the stateless entry" true
    q2.Protocol.r_cached

let test_session_error_paths () =
  let engine = Engine.create () in
  let dm0 = Demand_map.empty 2 in
  let run ?session ?scale op =
    Engine.process engine (Protocol.request ?session ?scale ~id:0 op dm0)
  in
  let expect_error msg r =
    match r.Protocol.r_result with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (msg ^ " must answer Error")
  in
  expect_error "missing session name" (run (Protocol.Session_add [| 0; 0 |]));
  expect_error "query on unknown session" (run ~session:"ghost" Protocol.Session_query);
  expect_error "remove on unknown session"
    (run ~session:"ghost" (Protocol.Session_remove [| 0; 0 |]));
  ignore (run ~session:"s" (Protocol.Session_add [| 0; 0 |]));
  expect_error "scale mismatch"
    (run ~session:"s" ~scale:360360 Protocol.Session_query);
  expect_error "remove below zero"
    (run ~session:"s" (Protocol.Session_remove [| 9; 9 |]));
  expect_error "dimension mismatch"
    (Engine.process engine
       (Protocol.request ~session:"s" ~id:0 (Protocol.Session_add [| 1 |])
          (Demand_map.empty 1)));
  (* the session survives its errors *)
  let q = run ~session:"s" Protocol.Session_query in
  (match q.Protocol.r_result with
  | Ok (Protocol.Value v) ->
      Alcotest.(check bool) "session still answers" true (Float.equal v 1.0)
  | _ -> Alcotest.fail "session must still answer");
  Alcotest.(check int) "one live session" 1 (Engine.session_count engine);
  expect_error "evaluate has no stateless session path"
    {
      Protocol.r_id = 0;
      r_cached = false;
      r_result = Engine.evaluate (Protocol.request ~session:"s" ~id:0 Protocol.Session_query dm0);
    }

let test_session_metrics () =
  Metrics.reset ();
  let engine = Engine.create () in
  let dm0 = Demand_map.empty 2 in
  let run op = Engine.process engine (Protocol.request ~session:"m" ~id:0 op dm0) in
  ignore (run (Protocol.Session_add [| 0; 0 |]));
  ignore (run Protocol.Session_query);
  ignore (run Protocol.Session_query);
  let count name =
    match Metrics.sample name with
    | Some (Metrics.Count n) -> n
    | _ -> Alcotest.fail (name ^ " missing")
  in
  Alcotest.(check int) "session ops counted" 3 (count "serve.session_ops");
  Alcotest.(check int) "one miss" 1 (count "serve.cache_misses");
  Alcotest.(check int) "one hit" 1 (count "serve.cache_hits");
  match Metrics.sample "serve.sessions" with
  | Some (Metrics.Level { value; _ }) ->
      Alcotest.(check (float 0.0)) "sessions gauge" 1.0 value
  | _ -> Alcotest.fail "serve.sessions missing"

(* LRU session eviction: the engine caps live sessions at
   [max_sessions]; inserting past the cap evicts the least-recently-used
   session, and touching a session (any op) protects it. *)
let test_session_lru_eviction () =
  let engine = Engine.create ~max_sessions:3 () in
  let dm0 = Demand_map.empty 2 in
  let run name op =
    Engine.process engine (Protocol.request ~session:name ~id:0 op dm0)
  in
  let add name = ignore (run name (Protocol.Session_add [| 0; 0 |])) in
  add "a";
  add "b";
  add "c";
  Alcotest.(check int) "cap not yet reached" 0 (Engine.session_evictions engine);
  Alcotest.(check int) "three live sessions" 3 (Engine.session_count engine);
  (* Touch "a" so "b" becomes the LRU victim. *)
  ignore (run "a" Protocol.Session_query);
  add "d";
  Alcotest.(check int) "one eviction" 1 (Engine.session_evictions engine);
  Alcotest.(check int) "still at the cap" 3 (Engine.session_count engine);
  (* "b" was evicted: querying it is now an unknown-session error... *)
  (match (run "b" Protocol.Session_query).Protocol.r_result with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "evicted session should be unknown");
  (* ...while the recently-touched "a" survived with its demand intact. *)
  (match (run "a" Protocol.Session_query).Protocol.r_result with
  | Ok (Protocol.Value v) ->
      Alcotest.(check bool) "survivor kept its job" true (v > 0.0)
  | _ -> Alcotest.fail "survivor session lost");
  (* Re-adding under the evicted name starts a fresh session (and evicts
     the current LRU, "c"). *)
  add "b";
  Alcotest.(check int) "second eviction" 2 (Engine.session_evictions engine);
  Alcotest.(check int) "count stays at the cap" 3 (Engine.session_count engine);
  (match Engine.create ~max_sessions:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "max_sessions 0: expected Invalid_argument")

let suite =
  [
    Alcotest.test_case "frame chunked roundtrip" `Quick test_frame_chunked_roundtrip;
    Alcotest.test_case "frame bad headers" `Quick test_frame_bad_headers;
    Alcotest.test_case "frame channel io" `Quick test_frame_channel_io;
    Alcotest.test_case "frame EOF mid-frame" `Quick test_frame_eof_mid_frame;
    Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
    Alcotest.test_case "request validation" `Quick test_request_validation;
    Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
    QCheck_alcotest.to_alcotest prop_digest_permutation_invariant;
    Alcotest.test_case "digest collision-free on workloads" `Quick
      test_digest_collision_free_on_workloads;
    Alcotest.test_case "digest sensitivity" `Quick test_digest_sensitivity;
    Alcotest.test_case "cached answers bit-identical" `Quick
      test_cached_answers_bit_identical;
    Alcotest.test_case "cache key discriminates" `Quick test_cache_key_discriminates;
    Alcotest.test_case "batch dedup and counters" `Quick
      test_batch_dedup_and_counters;
    Alcotest.test_case "cache capacity FIFO" `Quick test_cache_capacity_fifo;
    Alcotest.test_case "session LRU eviction" `Quick test_session_lru_eviction;
    Alcotest.test_case "engine error responses" `Quick test_engine_error_responses;
    Alcotest.test_case "loadgen deterministic" `Quick test_loadgen_deterministic;
    Alcotest.test_case "loadgen replay stats" `Quick test_loadgen_replay_stats;
    Alcotest.test_case "session request roundtrip" `Quick
      test_session_request_roundtrip;
    Alcotest.test_case "session request validation" `Quick
      test_session_request_validation;
    Alcotest.test_case "rowsum tracks digest" `Quick test_rowsum_tracks_digest;
    Alcotest.test_case "session digest never stale" `Quick
      test_session_digest_never_stale;
    Alcotest.test_case "session shares cache with stateless" `Quick
      test_session_shares_cache_with_stateless;
    Alcotest.test_case "session error paths" `Quick test_session_error_paths;
    Alcotest.test_case "session metrics" `Quick test_session_metrics;
  ]
