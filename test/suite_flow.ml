(* Dinic max-flow: known instances, min-cut certification, and agreement
   with a brute-force cut enumeration on random small networks. *)

let test_single_edge () =
  let net = Maxflow.create 2 in
  let e = Maxflow.add_edge net ~src:0 ~dst:1 ~cap:5 in
  Alcotest.(check int) "value" 5 (Maxflow.max_flow net ~source:0 ~sink:1);
  Alcotest.(check int) "edge flow" 5 (Maxflow.flow_on net e)

let test_series_bottleneck () =
  let net = Maxflow.create 3 in
  ignore (Maxflow.add_edge net ~src:0 ~dst:1 ~cap:7);
  ignore (Maxflow.add_edge net ~src:1 ~dst:2 ~cap:3);
  Alcotest.(check int) "bottleneck" 3 (Maxflow.max_flow net ~source:0 ~sink:2)

let test_parallel_paths () =
  let net = Maxflow.create 4 in
  ignore (Maxflow.add_edge net ~src:0 ~dst:1 ~cap:4);
  ignore (Maxflow.add_edge net ~src:1 ~dst:3 ~cap:4);
  ignore (Maxflow.add_edge net ~src:0 ~dst:2 ~cap:2);
  ignore (Maxflow.add_edge net ~src:2 ~dst:3 ~cap:5);
  Alcotest.(check int) "sum of paths" 6 (Maxflow.max_flow net ~source:0 ~sink:3)

let test_classic_residual_instance () =
  (* The textbook instance where an augmenting path must be undone via a
     residual edge. *)
  let net = Maxflow.create 4 in
  ignore (Maxflow.add_edge net ~src:0 ~dst:1 ~cap:1);
  ignore (Maxflow.add_edge net ~src:0 ~dst:2 ~cap:1);
  ignore (Maxflow.add_edge net ~src:1 ~dst:2 ~cap:1);
  ignore (Maxflow.add_edge net ~src:1 ~dst:3 ~cap:1);
  ignore (Maxflow.add_edge net ~src:2 ~dst:3 ~cap:1);
  Alcotest.(check int) "value 2" 2 (Maxflow.max_flow net ~source:0 ~sink:3)

let test_disconnected () =
  let net = Maxflow.create 3 in
  ignore (Maxflow.add_edge net ~src:0 ~dst:1 ~cap:9);
  Alcotest.(check int) "zero flow" 0 (Maxflow.max_flow net ~source:0 ~sink:2)

let test_zero_capacity () =
  let net = Maxflow.create 2 in
  ignore (Maxflow.add_edge net ~src:0 ~dst:1 ~cap:0);
  Alcotest.(check int) "zero" 0 (Maxflow.max_flow net ~source:0 ~sink:1)

(* Brute force: min cut by enumerating all vertex bipartitions. *)
let brute_force_min_cut ~n ~edges ~source ~sink =
  let best = ref max_int in
  for mask = 0 to (1 lsl n) - 1 do
    let side v = mask land (1 lsl v) <> 0 in
    if side source && not (side sink) then begin
      let cut =
        List.fold_left
          (fun acc (u, v, c) -> if side u && not (side v) then acc + c else acc)
          0 edges
      in
      if cut < !best then best := cut
    end
  done;
  !best

let random_network rng =
  let n = 2 + Rng.int rng 5 in
  let m = Rng.int rng 14 in
  let edges = ref [] in
  for _ = 1 to m do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then edges := (u, v, Rng.int rng 8) :: !edges
  done;
  (n, !edges)

let test_matches_brute_force () =
  let rng = Rng.create 2024 in
  for _ = 1 to 150 do
    let n, edges = random_network rng in
    let net = Maxflow.create n in
    List.iter (fun (u, v, c) -> ignore (Maxflow.add_edge net ~src:u ~dst:v ~cap:c)) edges;
    let flow = Maxflow.max_flow net ~source:0 ~sink:(n - 1) in
    let cut = brute_force_min_cut ~n ~edges ~source:0 ~sink:(n - 1) in
    Alcotest.(check int) "max-flow = min-cut (brute force)" cut flow
  done

let test_min_cut_side_certifies () =
  let rng = Rng.create 77 in
  for _ = 1 to 50 do
    let n, edges = random_network rng in
    let net = Maxflow.create n in
    List.iter (fun (u, v, c) -> ignore (Maxflow.add_edge net ~src:u ~dst:v ~cap:c)) edges;
    let flow = Maxflow.max_flow net ~source:0 ~sink:(n - 1) in
    let side = Maxflow.min_cut_side net ~source:0 in
    Alcotest.(check bool) "source on source side" true side.(0);
    Alcotest.(check bool) "sink on sink side" false side.(n - 1);
    let cut =
      List.fold_left
        (fun acc (u, v, c) -> if side.(u) && not side.(v) then acc + c else acc)
        0 edges
    in
    Alcotest.(check int) "cut value equals flow" flow cut
  done

let test_flow_conservation () =
  let rng = Rng.create 5150 in
  for _ = 1 to 50 do
    let n, edges = random_network rng in
    let net = Maxflow.create n in
    let ids = List.map (fun (u, v, c) -> ((u, v), Maxflow.add_edge net ~src:u ~dst:v ~cap:c)) edges in
    let value = Maxflow.max_flow net ~source:0 ~sink:(n - 1) in
    let balance = Array.make n 0 in
    List.iter
      (fun ((u, v), id) ->
        let f = Maxflow.flow_on net id in
        Alcotest.(check bool) "0 <= flow <= cap" true (f >= 0);
        balance.(u) <- balance.(u) - f;
        balance.(v) <- balance.(v) + f)
      ids;
    Alcotest.(check int) "source emits value" (-value) balance.(0);
    Alcotest.(check int) "sink absorbs value" value balance.(n - 1);
    for v = 1 to n - 2 do
      Alcotest.(check int) "interior balanced" 0 balance.(v)
    done
  done

(* Arena semantics: reset, warm-started capacity raises, mark/rewind. *)

let test_arena_reset () =
  let net = Maxflow.create 4 in
  ignore (Maxflow.add_edge net ~src:0 ~dst:1 ~cap:4);
  ignore (Maxflow.add_edge net ~src:1 ~dst:3 ~cap:4);
  ignore (Maxflow.add_edge net ~src:0 ~dst:2 ~cap:2);
  ignore (Maxflow.add_edge net ~src:2 ~dst:3 ~cap:5);
  Alcotest.(check int) "first run" 6 (Maxflow.max_flow net ~source:0 ~sink:3);
  Alcotest.(check int) "saturated" 0 (Maxflow.max_flow net ~source:0 ~sink:3);
  Maxflow.reset net;
  Alcotest.(check int) "after reset" 6 (Maxflow.max_flow net ~source:0 ~sink:3)

let test_set_even_caps_warm_start () =
  let net = Maxflow.create 2 in
  let e = Maxflow.add_edge net ~src:0 ~dst:1 ~cap:3 in
  Alcotest.(check int) "cold run" 3 (Maxflow.max_flow net ~source:0 ~sink:1);
  Maxflow.set_even_caps net [| e |] 5;
  Alcotest.(check int) "flow preserved across raise" 3 (Maxflow.flow_on net e);
  Alcotest.(check int) "increment only" 2 (Maxflow.max_flow net ~source:0 ~sink:1);
  Alcotest.(check int) "total routed" 5 (Maxflow.flow_on net e);
  (match Maxflow.set_even_caps net [| e |] 2 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "lowering below the routed flow must raise")

let test_mark_rewind () =
  let net = Maxflow.create 3 in
  let a = Maxflow.add_edge net ~src:0 ~dst:1 ~cap:2 in
  ignore (Maxflow.add_edge net ~src:1 ~dst:2 ~cap:4);
  Alcotest.(check int) "cold run" 2 (Maxflow.max_flow net ~source:0 ~sink:2);
  Maxflow.mark net;
  Maxflow.set_even_caps net [| a |] 4;
  Alcotest.(check int) "probe pushes more" 2 (Maxflow.max_flow net ~source:0 ~sink:2);
  Maxflow.rewind net;
  Alcotest.(check int) "flow restored" 2 (Maxflow.flow_on net a);
  Alcotest.(check int) "nothing left to push" 0
    (Maxflow.max_flow net ~source:0 ~sink:2)

let test_rewind_guards () =
  let net = Maxflow.create 2 in
  ignore (Maxflow.add_edge net ~src:0 ~dst:1 ~cap:1);
  (match Maxflow.rewind net with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "rewind without mark must raise");
  let net2 = Maxflow.create 3 in
  ignore (Maxflow.add_edge net2 ~src:0 ~dst:1 ~cap:1);
  Maxflow.mark net2;
  ignore (Maxflow.add_edge net2 ~src:1 ~dst:2 ~cap:1);
  (match Maxflow.rewind net2 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "rewind after add_edge must raise")

let test_warm_start_matches_cold () =
  (* Raising a parametric source edge level by level and summing the
     warm-started increments must land on the same value a cold run at
     the final level computes. *)
  let rng = Rng.create 90210 in
  for _ = 1 to 40 do
    let n, edges = random_network rng in
    let warm = Maxflow.create (n + 1) in
    let cold = Maxflow.create (n + 1) in
    let src_w = Maxflow.add_edge warm ~src:n ~dst:0 ~cap:0 in
    let src_c = Maxflow.add_edge cold ~src:n ~dst:0 ~cap:0 in
    List.iter
      (fun (u, v, c) ->
        ignore (Maxflow.add_edge warm ~src:u ~dst:v ~cap:c);
        ignore (Maxflow.add_edge cold ~src:u ~dst:v ~cap:c))
      edges;
    let total = ref 0 in
    for level = 1 to 4 do
      Maxflow.set_even_caps warm [| src_w |] (level * 3);
      total := !total + Maxflow.max_flow warm ~source:n ~sink:(n - 1)
    done;
    Maxflow.set_even_caps cold [| src_c |] 12;
    Alcotest.(check int) "warm increments sum to cold value"
      (Maxflow.max_flow cold ~source:n ~sink:(n - 1))
      !total
  done

(* Core differential: Dinic and push-relabel must agree not only on the
   flow value (both are max flows) but on [min_cut_side], which returns
   the unique minimal source side and is therefore core-independent. *)

let prop_cores_agree =
  QCheck.Test.make ~name:"push-relabel = dinic (value and min-cut side)"
    ~count:200
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n, edges = random_network rng in
      let run core =
        let net = Maxflow.create ~core n in
        List.iter
          (fun (u, v, c) -> ignore (Maxflow.add_edge net ~src:u ~dst:v ~cap:c))
          edges;
        let f = Maxflow.max_flow net ~source:0 ~sink:(n - 1) in
        (f, Maxflow.min_cut_side net ~source:0)
      in
      let fd, sd = run Maxflow.Dinic in
      let fp, sp = run Maxflow.Push_relabel in
      fd = fp && sd = sp)

let test_add_vertex () =
  let net = Maxflow.create 2 in
  ignore (Maxflow.add_edge net ~src:0 ~dst:1 ~cap:3);
  Alcotest.(check int) "cold run" 3 (Maxflow.max_flow net ~source:0 ~sink:1);
  let v = Maxflow.add_vertex net in
  Alcotest.(check int) "appended index" 2 v;
  Alcotest.(check int) "vertex count grows" 3 (Maxflow.n_vertices net);
  ignore (Maxflow.add_edge net ~src:0 ~dst:v ~cap:2);
  ignore (Maxflow.add_edge net ~src:v ~dst:1 ~cap:2);
  (* The old flow is retained; only the path through the new vertex is
     augmented. *)
  Alcotest.(check int) "increment through new vertex" 2
    (Maxflow.max_flow net ~source:0 ~sink:1)

let test_drain_even_caps_basic () =
  let net = Maxflow.create 3 in
  let e = Maxflow.add_edge net ~src:0 ~dst:1 ~cap:5 in
  ignore (Maxflow.add_edge net ~src:1 ~dst:2 ~cap:4);
  Alcotest.(check int) "cold run" 4 (Maxflow.max_flow net ~source:0 ~sink:2);
  let drained = Maxflow.drain_even_caps net [| e |] 2 ~source:0 ~sink:2 in
  Alcotest.(check int) "surplus cancelled to the sink" 2 drained;
  Alcotest.(check int) "flow lowered to the new cap" 2 (Maxflow.flow_on net e);
  Alcotest.(check int) "still maximal at the lower level" 0
    (Maxflow.max_flow net ~source:0 ~sink:2);
  (* Raising through the same entry point drains nothing and leaves the
     delta for the next run. *)
  Alcotest.(check int) "raise drains nothing" 0
    (Maxflow.drain_even_caps net [| e |] 5 ~source:0 ~sink:2);
  Alcotest.(check int) "re-augments the delta" 2
    (Maxflow.max_flow net ~source:0 ~sink:2)

let test_drain_even_caps_guards () =
  let net = Maxflow.create 3 in
  let src = Maxflow.add_edge net ~src:0 ~dst:1 ~cap:2 in
  let interior = Maxflow.add_edge net ~src:1 ~dst:2 ~cap:2 in
  ignore (Maxflow.max_flow net ~source:0 ~sink:2);
  (match Maxflow.drain_even_caps net [| interior |] 1 ~source:0 ~sink:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "interior tail must raise");
  (match Maxflow.drain_even_caps net [| src lxor 1 |] 1 ~source:0 ~sink:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "odd (residual) id must raise")

let prop_drain_resume_matches_fresh =
  (* Lowering the parametric source edges with a drain and re-augmenting
     must land exactly where a fresh solve at the lower level lands, on
     either core. *)
  QCheck.Test.make ~name:"drain then warm resume = fresh solve (both cores)"
    ~count:150
    QCheck.(pair (int_range 0 1_000_000) bool)
    (fun (seed, use_dinic) ->
      let core = if use_dinic then Maxflow.Dinic else Maxflow.Push_relabel in
      let rng = Rng.create seed in
      let n, edges = random_network rng in
      let k = 1 + Rng.int rng 3 in
      let dsts = Array.init k (fun _ -> Rng.int rng n) in
      let hi = 6 and lo = Rng.int rng 6 in
      let build cap =
        let net = Maxflow.create ~core (n + 1) in
        let src =
          Array.map (fun v -> Maxflow.add_edge net ~src:n ~dst:v ~cap) dsts
        in
        List.iter
          (fun (u, v, c) -> ignore (Maxflow.add_edge net ~src:u ~dst:v ~cap:c))
          edges;
        (net, src)
      in
      let net, src = build hi in
      let f0 = Maxflow.max_flow net ~source:n ~sink:(n - 1) in
      let drained = Maxflow.drain_even_caps net src lo ~source:n ~sink:(n - 1) in
      let within = Array.for_all (fun e -> Maxflow.flow_on net e <= lo) src in
      let inc = Maxflow.max_flow net ~source:n ~sink:(n - 1) in
      let fresh, _ = build lo in
      let fv = Maxflow.max_flow fresh ~source:n ~sink:(n - 1) in
      within && drained >= 0 && inc >= 0 && f0 - drained + inc = fv)

let suite =
  [
    Alcotest.test_case "single edge" `Quick test_single_edge;
    Alcotest.test_case "series bottleneck" `Quick test_series_bottleneck;
    Alcotest.test_case "parallel paths" `Quick test_parallel_paths;
    Alcotest.test_case "residual instance" `Quick test_classic_residual_instance;
    Alcotest.test_case "disconnected" `Quick test_disconnected;
    Alcotest.test_case "zero capacity" `Quick test_zero_capacity;
    Alcotest.test_case "matches brute force" `Quick test_matches_brute_force;
    Alcotest.test_case "min cut certifies" `Quick test_min_cut_side_certifies;
    Alcotest.test_case "flow conservation" `Quick test_flow_conservation;
    Alcotest.test_case "arena reset" `Quick test_arena_reset;
    Alcotest.test_case "set_even_caps warm start" `Quick
      test_set_even_caps_warm_start;
    Alcotest.test_case "mark/rewind" `Quick test_mark_rewind;
    Alcotest.test_case "rewind guards" `Quick test_rewind_guards;
    Alcotest.test_case "warm start matches cold" `Quick
      test_warm_start_matches_cold;
    Alcotest.test_case "add_vertex keeps flow" `Quick test_add_vertex;
    Alcotest.test_case "drain_even_caps basic" `Quick test_drain_even_caps_basic;
    Alcotest.test_case "drain_even_caps guards" `Quick
      test_drain_even_caps_guards;
    QCheck_alcotest.to_alcotest prop_cores_agree;
    QCheck_alcotest.to_alcotest prop_drain_resume_matches_fresh;
  ]
