(* Command-line interface to the CMVRP library.

   Subcommands:
     workload   — generate an arrival sequence and print it (one "x y" pair
                  per line, arrival order)
     solve      — offline analysis of a workload: bounds, plan, Algorithm 1
     simulate   — run the distributed online strategy and report the audit
     fleet      — run the strategy sharded across a fleet-scale window
                  (band decomposition, Pool workers, digest --check)
     bench-diff — compare two BENCH_<rev>.json reports and fail on
                  regression (the check CI runs; see docs/OBSERVABILITY.md)

   Workloads come either from a generator family (--kind and its
   parameters) or from a file of "x y" lines (--input). *)

open Cmdliner

(* --- workload specification shared by the subcommands --- *)

type spec = {
  kind : string;
  side : int;
  len : int;
  per_point : int;
  total : int;
  jobs : int;
  box_side : int;
  clusters : int;
  spread : int;
  sites : int;
  exponent : float;
  seed : int;
  input : string option;
}

let spec_term =
  let kind =
    let doc =
      "Workload family: square | line | point | uniform | clustered | zipf."
    in
    Arg.(value & opt string "uniform" & info [ "kind"; "k" ] ~doc)
  in
  let side = Arg.(value & opt int 4 & info [ "side" ] ~doc:"Square side (kind=square).") in
  let len = Arg.(value & opt int 16 & info [ "len" ] ~doc:"Line length (kind=line).") in
  let per_point =
    Arg.(value & opt int 10 & info [ "per-point" ] ~doc:"Demand per point (square/line).")
  in
  let total =
    Arg.(value & opt int 100 & info [ "total" ] ~doc:"Total demand (kind=point).")
  in
  let jobs =
    Arg.(value & opt int 200 & info [ "jobs" ] ~doc:"Job count (uniform/zipf).")
  in
  let box_side =
    Arg.(value & opt int 10 & info [ "box-side" ] ~doc:"Random-area side length.")
  in
  let clusters = Arg.(value & opt int 3 & info [ "clusters" ] ~doc:"Cluster count.") in
  let spread = Arg.(value & opt int 2 & info [ "spread" ] ~doc:"Cluster spread.") in
  let sites = Arg.(value & opt int 10 & info [ "sites" ] ~doc:"Zipf site count.") in
  let exponent =
    Arg.(value & opt float 1.3 & info [ "exponent" ] ~doc:"Zipf exponent.")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Generator seed.") in
  let input =
    Arg.(
      value
      & opt (some string) None
      & info [ "input"; "i" ] ~doc:"Read jobs from a file of \"x y\" lines instead.")
  in
  let make kind side len per_point total jobs box_side clusters spread sites
      exponent seed input =
    {
      kind;
      side;
      len;
      per_point;
      total;
      jobs;
      box_side;
      clusters;
      spread;
      sites;
      exponent;
      seed;
      input;
    }
  in
  Term.(
    const make $ kind $ side $ len $ per_point $ total $ jobs $ box_side
    $ clusters $ spread $ sites $ exponent $ seed $ input)

let load_jobs_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> Workload_io.of_channel ~name:(Printf.sprintf "file(%s)" path) ic)

let realize spec =
  match spec.input with
  | Some path -> load_jobs_file path
  | None -> begin
      let rng = Rng.create spec.seed in
      let box =
        Box.make ~lo:[| 0; 0 |] ~hi:[| spec.box_side - 1; spec.box_side - 1 |]
      in
      match spec.kind with
      | "square" -> Workload.square ~side:spec.side ~per_point:spec.per_point ()
      | "line" -> Workload.line ~len:spec.len ~per_point:spec.per_point
      | "point" -> Workload.point ~total:spec.total ()
      | "uniform" -> Workload.uniform ~rng ~box ~jobs:spec.jobs
      | "clustered" ->
          Workload.clustered ~rng ~box ~clusters:spec.clusters
            ~jobs_per_cluster:(spec.jobs / max 1 spec.clusters)
            ~spread:spec.spread
      | "zipf" ->
          Workload.zipf_sites ~rng ~box ~sites:spec.sites ~jobs:spec.jobs
            ~exponent:spec.exponent
      | other -> failwith (Printf.sprintf "unknown workload kind %S" other)
    end

(* --- workload subcommand --- *)

let workload_cmd =
  let heat =
    Arg.(
      value & flag
      & info [ "heatmap" ] ~doc:"Print an ASCII demand heatmap instead of jobs.")
  in
  let run spec heat =
    let w = realize spec in
    if heat then print_string (Workload_io.heatmap w)
    else Workload_io.to_channel stdout w
  in
  let doc = "Generate an arrival sequence and print it." in
  Cmd.v (Cmd.info "workload" ~doc) Term.(const run $ spec_term $ heat)

(* --- solve subcommand --- *)

let solve_cmd =
  let run spec =
    let w = realize spec in
    let dm = Workload.demand w in
    Printf.printf "workload        : %s\n" w.Workload.name;
    Printf.printf "jobs / sites    : %d / %d\n" (Demand_map.total dm)
      (Demand_map.support_size dm);
    if Demand_map.total dm = 0 then print_endline "empty demand; Woff = 0"
    else begin
      let star = Oracle.omega_star dm in
      let omega_c, side = Omega.cube_fixpoint_with_side dm in
      Printf.printf "omega* (LP 2.8) : %.4f   <- lower bound on Woff\n" star;
      (match Oracle.witness dm with
      | Some (points, w) when List.length points <= 12 ->
          Printf.printf "tight set T     : { %s } with omega_T = %.4f\n"
            (String.concat ", " (List.map Point.to_string points))
            w
      | Some (points, w) ->
          Printf.printf "tight set T     : %d sites, omega_T = %.4f\n"
            (List.length points) w
      | None -> ());
      Printf.printf "omega_c / side  : %.4f / %d\n" omega_c side;
      let plan = Planner.plan dm in
      (match Planner.validate plan dm with
      | Ok () -> ()
      | Error m -> failwith ("internal: plan invalid: " ^ m));
      Printf.printf "planner Woff    : %d   <- constructive upper bound\n"
        (Planner.max_energy plan);
      Printf.printf "theorem cap     : %.2f = (2*3^l + l) * omega_c + 2\n"
        (Planner.theorem_bound ~dim:2 omega_c +. 2.0);
      (* Algorithm 1 needs a power-of-two window anchored at the origin. *)
      match Demand_map.bounding_box dm with
      | None -> ()
      | Some bbox ->
          let extent =
            max
              (abs bbox.Box.lo.(0) + abs bbox.Box.hi.(0) + 1)
              (abs bbox.Box.lo.(1) + abs bbox.Box.hi.(1) + 1)
          in
          let n = ref 1 in
          while !n < extent do
            n := 2 * !n
          done;
          if bbox.Box.lo.(0) >= 0 && bbox.Box.lo.(1) >= 0 then begin
            let r = Alg1.run ~dim:2 ~n:!n dm in
            Printf.printf "Algorithm 1     : %.2f (grid n=%d, %d cell ops)\n"
              r.Alg1.value !n r.Alg1.cell_ops
          end
    end
  in
  let doc = "Offline analysis: bounds, constructive plan, Algorithm 1." in
  Cmd.v (Cmd.info "solve" ~doc) Term.(const run $ spec_term)

(* --- simulate subcommand --- *)

let simulate_cmd =
  let capacity =
    Arg.(
      value
      & opt (some float) None
      & info [ "capacity"; "W" ]
          ~doc:"Per-vehicle energy (defaults to the Lemma 3.3.1 capacity).")
  in
  let cube_side =
    Arg.(
      value
      & opt (some int) None
      & info [ "cube-side" ] ~doc:"Partition cube side (defaults to ceil(omega_c)).")
  in
  let kills =
    Arg.(
      value
      & opt (list (pair ~sep:':' int int)) []
      & info [ "kill" ]
          ~doc:"Failure injection: comma-separated job:vehicle pairs (scenario 3).")
  in
  let silent =
    Arg.(
      value
      & opt (list int) []
      & info [ "silent" ]
          ~doc:"Vehicle ids that never announce exhaustion (scenario 2).")
  in
  let find_min =
    Arg.(
      value & flag
      & info [ "find-min" ]
          ~doc:"Binary-search the smallest workable capacity instead of one run.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ] ~doc:"Print every protocol event (retirements, \
                               diffusing computations, replacements).")
  in
  let drop_p =
    Arg.(
      value & opt float 0.0
      & info [ "drop-p" ]
          ~doc:"Probability that a channel silently drops each message.")
  in
  let dup_p =
    Arg.(
      value & opt float 0.0
      & info [ "dup-p" ]
          ~doc:"Probability that a channel delivers each message twice.")
  in
  let partition =
    Arg.(
      value
      & opt (list (pair ~sep:':' int int)) []
      & info [ "partition" ]
          ~doc:"Vehicle pairs a:b whose link is cut for the whole run.")
  in
  let no_retries =
    Arg.(
      value & flag
      & info [ "no-retries" ]
          ~doc:
            "Disable the ack/retry reliable-delivery layer.  Under a lossy \
             channel this is how to watch the livelock guard fire.")
  in
  let budget =
    Arg.(
      value & opt int 100_000
      & info [ "budget" ]
          ~doc:"Events dispatched per network drain before declaring a livelock.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Exit 1 unless every job was served (for CI smoke jobs).")
  in
  let run spec capacity cube_side kills silent find_min trace drop_p dup_p
      partition no_retries budget check =
    let w = realize spec in
    let recommended = Online.recommended ~seed:spec.seed w in
    let cfg =
      try
        Online.config ~comm_radius:recommended.Online.comm_radius
          ~seed:spec.seed
          ~faults:
            { Online.no_faults with Online.silent_initiators = silent; deaths = kills }
          ~chaos:(Des.faults ~drop_p ~dup_p ())
          ~partitions:partition ~retries:(not no_retries) ~quiesce_budget:budget
          ~capacity:(Option.value ~default:recommended.Online.capacity capacity)
          ~side:(Option.value ~default:recommended.Online.side cube_side)
          ()
      with Invalid_argument m ->
        Printf.eprintf "simulate: %s\n" m;
        exit 2
    in
    if find_min then begin
      let m = Online.min_feasible_capacity ~seed:spec.seed ~side:cfg.Online.side w in
      Printf.printf "smallest workable capacity (side %d): %.3f\n" cfg.Online.side m;
      Printf.printf "LP lower bound omega*: %.3f\n"
        (Oracle.omega_star (Workload.demand w))
    end
    else begin
      let observer =
        if not trace then None
        else
          Some
            (function
            | Online.Job_served _ -> ()
            | Online.Vehicle_retired { vehicle; pair } ->
                Printf.printf "  [retired]     vehicle %d (pair %d)\n" vehicle pair
            | Online.Vehicle_died { vehicle } ->
                Printf.printf "  [died]        vehicle %d\n" vehicle
            | Online.Computation_started { initiator; pair } ->
                Printf.printf "  [diffusing]   initiator %d searching for pair %d\n"
                  initiator pair
            | Online.Candidate_found { initiator; pair } ->
                Printf.printf "  [candidate]   found for pair %d (initiator %d)\n"
                  pair initiator
            | Online.Replacement { vehicle; pair; dest } ->
                Printf.printf "  [replacement] vehicle %d takes pair %d at %s\n"
                  vehicle pair (Point.to_string dest)
            | Online.Search_starved { pair } ->
                Printf.printf "  [starved]     no idle vehicle for pair %d\n" pair)
      in
      let o =
        try Online.run ?observer cfg w
        with Invalid_argument m ->
          Printf.eprintf "simulate: %s\n" m;
          exit 2
      in
      Printf.printf "workload      : %s\n" w.Workload.name;
      Printf.printf "capacity/side : %.2f / %d\n" cfg.Online.capacity cfg.Online.side;
      Printf.printf "served        : %d/%d\n" o.Online.served
        (Array.length w.Workload.jobs);
      Printf.printf "peak energy   : %.2f\n" o.Online.max_energy_used;
      Printf.printf "replacements  : %d (%d diffusing computations, %d messages)\n"
        o.Online.replacements o.Online.computations o.Online.messages;
      if drop_p > 0.0 || dup_p > 0.0 || partition <> [] || o.Online.livelocks > 0
      then
        Printf.printf
          "channel chaos : %d dropped, %d duplicated, %d retransmissions, %d \
           livelock(s)\n"
          o.Online.drops o.Online.dups o.Online.retries_sent o.Online.livelocks;
      Printf.printf "trace digest  : %016x\n" o.Online.trace_digest;
      List.iter
        (fun f ->
          Printf.printf "FAILED job %d at %s: %s\n" f.Online.job
            (Point.to_string f.Online.position)
            f.Online.reason)
        o.Online.failures;
      if Online.succeeded o then print_endline "outcome       : SUCCESS"
      else begin
        print_endline "outcome       : FAILURE";
        if check then exit 1
      end
    end
  in
  let doc = "Run the Chapter 3 distributed online strategy." in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      const run $ spec_term $ capacity $ cube_side $ kills $ silent $ find_min
      $ trace $ drop_p $ dup_p $ partition $ no_retries $ budget $ check)

(* --- fleet subcommand --- *)

let fleet_cmd =
  let capacity =
    Arg.(
      value
      & opt (some float) None
      & info [ "capacity"; "W" ]
          ~doc:
            "Per-vehicle energy.  Unlike $(b,simulate) there is no default: \
             the Lemma 3.3.1 capacity needs the aggregate demand, which is \
             not worth computing for a fleet-scale window.")
  in
  let cube_side =
    Arg.(value & opt int 4 & info [ "cube-side" ] ~doc:"Partition cube side.")
  in
  let shards =
    Arg.(
      value & opt int 8
      & info [ "shards" ] ~doc:"Band count the window is split into.")
  in
  let workers =
    Arg.(
      value & opt int Pool.default_workers
      & info [ "workers"; "j" ] ~doc:"Width of the shard Domain pool.")
  in
  let kills =
    Arg.(
      value
      & opt (list (pair ~sep:':' int int)) []
      & info [ "kill" ]
          ~doc:"Comma-separated job:vehicle pairs (global window ids).")
  in
  let outages =
    Arg.(
      value
      & opt (list (t3 ~sep:':' int int float)) []
      & info [ "outage" ]
          ~doc:
            "Comma-separated job:vehicle:delay triples — vehicle falls \
             radio-silent after the job and restarts delay time units later.")
  in
  let drop_p =
    Arg.(
      value & opt float 0.0
      & info [ "drop-p" ]
          ~doc:"Probability that a channel silently drops each message.")
  in
  let dup_p =
    Arg.(
      value & opt float 0.0
      & info [ "dup-p" ]
          ~doc:"Probability that a channel delivers each message twice.")
  in
  let spike_p =
    Arg.(
      value & opt float 0.0
      & info [ "spike-p" ] ~doc:"Probability of a delay spike per message.")
  in
  let budget =
    Arg.(
      value & opt int 10_000_000
      & info [ "budget" ]
          ~doc:
            "Events dispatched per network drain before declaring a \
             livelock.  The default is fleet-sized: a band of 10^5 vehicles \
             legitimately dispatches millions of deadline ticks per drain.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Re-run the fleet single-threaded and exit 1 unless every \
             per-shard digest is bit-identical — the determinism witness CI \
             relies on.")
  in
  let run spec capacity cube_side shards workers kills outages drop_p dup_p
      spike_p budget check =
    let w = realize spec in
    let capacity =
      match capacity with
      | Some c -> c
      | None ->
          prerr_endline "fleet: --capacity is required";
          exit 2
    in
    let cfg =
      try
        Online.config ~seed:spec.seed
          ~faults:{ Online.no_faults with Online.deaths = kills; outages }
          ~chaos:(Des.faults ~drop_p ~dup_p ~spike_p ())
          ~quiesce_budget:budget ~capacity ~side:cube_side ()
      with Invalid_argument m ->
        Printf.eprintf "fleet: %s\n" m;
        exit 2
    in
    let f =
      try Online.run_fleet ~workers ~shards cfg w
      with Invalid_argument m ->
        Printf.eprintf "fleet: %s\n" m;
        exit 2
    in
    let o = f.Online.aggregate in
    Printf.printf "workload      : %s\n" w.Workload.name;
    Printf.printf "fleet         : %d vehicles in %d band(s), %d worker(s)\n"
      o.Online.vehicles f.Online.shard_count workers;
    Printf.printf "capacity/side : %.2f / %d\n" capacity cube_side;
    Printf.printf "served        : %d/%d\n" o.Online.served
      (Array.length w.Workload.jobs);
    Printf.printf "messages      : %d delivered (%d dropped, %d duplicated, %d \
                   retransmissions)\n"
      o.Online.messages o.Online.drops o.Online.dups o.Online.retries_sent;
    Printf.printf "replacements  : %d (%d diffusing computations, %d \
                   livelocked drains)\n"
      o.Online.replacements o.Online.computations o.Online.livelocks;
    Printf.printf "bytes/vehicle : %.0f\n" f.Online.bytes_per_vehicle;
    Array.iteri
      (fun s d -> Printf.printf "shard %-3d     : %016x\n" s d)
      f.Online.shard_digests;
    Printf.printf "aggregate     : %016x\n" o.Online.trace_digest;
    if check then begin
      let g = Online.run_fleet ~workers:1 ~shards cfg w in
      let same =
        Array.length g.Online.shard_digests = Array.length f.Online.shard_digests
        && Array.for_all2 Int.equal g.Online.shard_digests f.Online.shard_digests
      in
      if same then
        Printf.printf "check         : digests identical at %d worker(s) and 1\n"
          workers
      else begin
        Printf.printf "check         : DIGEST MISMATCH between %d worker(s) and 1\n"
          workers;
        exit 1
      end
    end
  in
  let doc = "Run the online strategy sharded across a vehicle-fleet window." in
  Cmd.v
    (Cmd.info "fleet" ~doc)
    Term.(
      const run $ spec_term $ capacity $ cube_side $ shards $ workers $ kills
      $ outages $ drop_p $ dup_p $ spike_p $ budget $ check)

(* --- bench-diff subcommand --- *)

let bench_diff_cmd =
  let baseline =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BASELINE"
         ~doc:"Baseline BENCH_<rev>.json report.")
  in
  let candidate =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"CANDIDATE"
         ~doc:"Candidate BENCH_<rev>.json report to vet against the baseline.")
  in
  let tolerance =
    Arg.(
      value & opt float 0.5
      & info [ "tolerance" ]
          ~doc:
            "Allowed relative growth of wall times and timer spans: a \
             duration regresses when new > (1 + tolerance) * old + 0.5ms.")
  in
  let metric_tolerance =
    Arg.(
      value & opt float 0.1
      & info [ "metric-tolerance" ]
          ~doc:
            "Allowed relative growth of counters and gauge peaks (these are \
             deterministic, so keep it tight even across machines).")
  in
  let scenario_prefix =
    Arg.(
      value & opt (some string) None
      & info [ "scenario" ] ~docv:"PREFIX"
          ~doc:
            "Restrict the comparison to scenarios whose name starts with \
             \\$(docv) (e.g. oracle/).  Lets CI hold a hot subsystem to a \
             tighter tolerance than the rest of the suite.")
  in
  let run baseline_path candidate_path tolerance metric_tolerance scenario_prefix =
    if tolerance < 0.0 || metric_tolerance < 0.0 then begin
      Printf.eprintf "bench-diff: tolerances must be non-negative\n";
      exit 2
    end;
    let load path =
      match Bench_report.read_file path with
      | Ok r -> r
      | Error e ->
          Printf.eprintf "bench-diff: %s\n" e;
          exit 2
    in
    let restrict (r : Bench_report.t) =
      match scenario_prefix with
      | None -> r
      | Some prefix ->
          {
            r with
            Bench_report.scenarios =
              List.filter
                (fun (s : Bench_report.scenario) ->
                  String.starts_with ~prefix s.Bench_report.name)
                r.Bench_report.scenarios;
          }
    in
    let baseline = restrict (load baseline_path) in
    let candidate = restrict (load candidate_path) in
    (match (scenario_prefix, baseline.Bench_report.scenarios) with
    | Some prefix, [] ->
        Printf.eprintf
          "bench-diff: no baseline scenario matches prefix %S\n" prefix;
        exit 2
    | _ -> ());
    let compared =
      List.length
        (List.filter
           (fun (s : Bench_report.scenario) ->
             List.exists
               (fun (c : Bench_report.scenario) -> c.Bench_report.name = s.Bench_report.name)
               candidate.Bench_report.scenarios)
           baseline.Bench_report.scenarios)
    in
    Printf.printf
      "bench-diff: baseline %s (rev %s) vs candidate %s (rev %s); %d \
       scenario(s) compared\n"
      baseline_path baseline.Bench_report.revision candidate_path
      candidate.Bench_report.revision compared;
    if baseline.Bench_report.quick <> candidate.Bench_report.quick then
      Printf.printf
        "warning: comparing a %s baseline against a %s candidate\n"
        (if baseline.Bench_report.quick then "quick" else "full")
        (if candidate.Bench_report.quick then "quick" else "full");
    match
      Bench_report.diff ~wall_tolerance:tolerance ~metric_tolerance ~baseline
        ~candidate ()
    with
    | [] ->
        Printf.printf
          "OK: no regression (wall tolerance %.0f%%, metric tolerance %.0f%%)\n"
          (100.0 *. tolerance)
          (100.0 *. metric_tolerance)
    | regressions ->
        List.iter
          (fun r ->
            Format.printf "REGRESSION %a@." Bench_report.pp_regression r)
          regressions;
        Printf.printf "%d regression(s) found\n" (List.length regressions);
        exit 1
  in
  let doc = "Compare two benchmark reports; exit 1 on regression." in
  Cmd.v
    (Cmd.info "bench-diff" ~doc)
    Term.(
      const run $ baseline $ candidate $ tolerance $ metric_tolerance
      $ scenario_prefix)

let () =
  let doc = "CMVRP: capacitated multivehicle routing on the grid (Gao 2008)" in
  let info = Cmd.info "cmvrp" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ workload_cmd; solve_cmd; simulate_cmd; fleet_cmd; bench_diff_cmd ]))
