(* Oracle-as-a-service front end.

   Subcommands:
     daemon  — serve oracle queries over a Unix socket (or stdio) using
               the length-prefixed JSON protocol of docs/SERVING.md
     loadgen — replay a seeded query mix against a daemon (or an
               in-process engine) and report latency/throughput/cache
               statistics; with --check, verify every answer against a
               fresh oracle call and exit non-zero on any mismatch

   The CI serve-smoke step is exactly:
     cmvrp_serve daemon --socket S &
     cmvrp_serve loadgen --socket S --mix repeat-heavy --queries 1000 \
       --check --min-hit-rate 0.5 --shutdown *)

open Cmdliner

let workers_term =
  let doc = "Width of the oracle Domain pool (1 = sequential)." in
  Arg.(value & opt int Pool.default_workers & info [ "workers"; "j" ] ~doc)

let cache_entries_term =
  let doc = "Result-cache size in entries (FIFO eviction)." in
  Arg.(value & opt int 4096 & info [ "cache-entries" ] ~doc)

let max_sessions_term =
  let doc = "Most live streaming sessions before LRU eviction." in
  Arg.(value & opt int 64 & info [ "max-sessions" ] ~doc)

let socket_term =
  let doc = "Path of the daemon's Unix socket." in
  Arg.(value & opt (some string) None & info [ "socket"; "s" ] ~doc)

(* --- daemon --- *)

let daemon_cmd =
  let stdio =
    Arg.(value & flag & info [ "stdio" ] ~doc:"Serve one client over stdin/stdout.")
  in
  let max_batch =
    let doc = "Most requests handed to the engine per batch." in
    Arg.(value & opt int Daemon.default_max_batch & info [ "max-batch" ] ~doc)
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress lifecycle notes on stderr.")
  in
  let run socket stdio workers cache_entries max_sessions max_batch quiet =
    let transport =
      match (socket, stdio) with
      | Some _, true ->
          prerr_endline "cmvrp_serve daemon: --socket and --stdio are exclusive";
          exit 2
      | Some path, false -> Daemon.Unix_socket path
      | None, true -> Daemon.Stdio
      | None, false ->
          prerr_endline "cmvrp_serve daemon: need --socket PATH or --stdio";
          exit 2
    in
    if workers < 1 || cache_entries < 1 || max_sessions < 1 || max_batch < 1
    then begin
      prerr_endline
        "cmvrp_serve daemon: --workers, --cache-entries, --max-sessions and --max-batch must be positive";
      exit 2
    end;
    Pool.set_workers workers;
    let trace =
      if quiet then fun (_ : string) -> ()
      else fun msg -> Printf.eprintf "[cmvrp_serve] %s\n%!" msg
    in
    Daemon.run ~trace
      (Daemon.config ~cache_capacity:cache_entries ~max_sessions ~max_batch
         transport)
  in
  let doc = "Run the oracle daemon." in
  Cmd.v
    (Cmd.info "daemon" ~doc)
    Term.(
      const run $ socket_term $ stdio $ workers_term $ cache_entries_term
      $ max_sessions_term $ max_batch $ quiet)

(* --- loadgen --- *)

let print_stats (s : Loadgen.stats) =
  Printf.printf "queries     %d sent, %d completed, %d error responses\n"
    s.Loadgen.sent s.Loadgen.completed s.Loadgen.error_responses;
  Printf.printf "cache       %d served from cache (hit rate %.3f)\n"
    s.Loadgen.cached_responses s.Loadgen.hit_rate;
  Printf.printf "throughput  %.1f queries/s over %.3f s\n"
    s.Loadgen.throughput_qps (s.Loadgen.wall_ns *. 1e-9);
  Printf.printf "latency     p50 %.3f ms, p95 %.3f ms, p99 %.3f ms\n"
    (s.Loadgen.p50_ns *. 1e-6) (s.Loadgen.p95_ns *. 1e-6)
    (s.Loadgen.p99_ns *. 1e-6)

let loadgen_cmd =
  let mix =
    let doc = "Query mix: repeat-heavy | churn | cold-miss." in
    Arg.(value & opt string "repeat-heavy" & info [ "mix"; "m" ] ~doc)
  in
  let queries =
    Arg.(value & opt int 1000 & info [ "queries"; "n" ] ~doc:"Number of queries.")
  in
  let clients =
    Arg.(value & opt int 4 & info [ "clients"; "c" ] ~doc:"Concurrent connections.")
  in
  let window =
    Arg.(value & opt int 8 & info [ "window"; "w" ] ~doc:"In-flight requests per client.")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Mix generator seed.") in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Re-verify every answer against a fresh oracle call (bit-identical).")
  in
  let min_hit_rate =
    let doc = "Fail unless the cache hit rate reaches this fraction." in
    Arg.(value & opt (some float) None & info [ "min-hit-rate" ] ~doc)
  in
  let shutdown =
    Arg.(value & flag & info [ "shutdown" ] ~doc:"Send a shutdown request when done.")
  in
  let in_process =
    Arg.(
      value & flag
      & info [ "in-process" ]
          ~doc:"Skip the socket: run the mix against an in-process engine.")
  in
  let run socket mix queries clients window seed check min_hit_rate shutdown
      in_process workers cache_entries =
    (match (socket, in_process) with
    | None, false ->
        prerr_endline "cmvrp_serve loadgen: need --socket PATH or --in-process";
        exit 2
    | _ -> ());
    if queries < 1 || clients < 1 || window < 1 then begin
      prerr_endline "cmvrp_serve loadgen: --queries, --clients and --window must be positive";
      exit 2
    end;
    let mix =
      match Loadgen.mix_of_string mix with
      | Ok m -> m
      | Error e ->
          prerr_endline ("cmvrp_serve loadgen: " ^ e);
          exit 2
    in
    Pool.set_workers workers;
    let reqs = Loadgen.queries ~seed ~mix ~n:queries in
    let result =
      if in_process then
        Loadgen.replay_engine ~check
          (Engine.create ~cache_capacity:cache_entries ())
          reqs
      else
        let socket = Option.get socket in
        let r = Loadgen.replay_socket ~check ~socket ~clients ~window reqs in
        (if shutdown then
           match Loadgen.send_shutdown ~socket () with
           | Ok () -> ()
           | Error e -> Printf.eprintf "cmvrp_serve loadgen: shutdown: %s\n%!" e);
        r
    in
    match result with
    | Error e ->
        Printf.eprintf "cmvrp_serve loadgen: %s\n%!" e;
        exit 1
    | Ok stats -> (
        print_stats stats;
        if stats.Loadgen.error_responses > 0 then begin
          prerr_endline "cmvrp_serve loadgen: daemon returned error responses";
          exit 1
        end;
        match min_hit_rate with
        | Some floor when stats.Loadgen.hit_rate < floor ->
            Printf.eprintf
              "cmvrp_serve loadgen: hit rate %.3f below required %.3f\n%!"
              stats.Loadgen.hit_rate floor;
            exit 1
        | _ -> ())
  in
  let doc = "Replay a seeded query mix and report service statistics." in
  Cmd.v
    (Cmd.info "loadgen" ~doc)
    Term.(
      const run $ socket_term $ mix $ queries $ clients $ window $ seed $ check
      $ min_hit_rate $ shutdown $ in_process $ workers_term $ cache_entries_term)

let () =
  let doc = "CMVRP oracle serving daemon and load generator." in
  let info = Cmd.info "cmvrp_serve" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ daemon_cmd; loadgen_cmd ]))
